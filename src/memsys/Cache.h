//===- memsys/Cache.h - Set-associative cache hierarchy --------*- C++ -*-===//
//
// Part of the StrideProf project, a reproduction of Youfeng Wu, "Efficient
// Discovery of Regular Stride Patterns in Irregular Programs and Its Use in
// Compiler Prefetching" (PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A timing-aware cache hierarchy standing in for the paper's 733 MHz
/// Itanium memory system: 16KB 4-way L1D, 96KB 6-way unified L2, 2MB 4-way
/// unified L3 (Section 4). Lines carry a *ready time* so that prefetches
/// issued K iterations ahead (Figure 3) overlap with execution: a demand
/// load that arrives before its prefetched line is ready stalls only for
/// the remaining cycles (a "late" prefetch), which is exactly the effect
/// the paper's prefetch-distance heuristic trades against cache pollution.
///
//===----------------------------------------------------------------------===//

#ifndef SPROF_MEMSYS_CACHE_H
#define SPROF_MEMSYS_CACHE_H

#include <cstdint>
#include <string>
#include <vector>

namespace sprof {

/// Geometry and latency of one cache level.
struct CacheLevelConfig {
  std::string Name = "L1";
  uint64_t SizeBytes = 16 * 1024;
  unsigned Associativity = 4;
  unsigned LineBytes = 64;
  /// Load-to-use latency when hitting in this level.
  uint32_t HitLatency = 2;
};

/// Whole-hierarchy configuration. Defaults model the paper's Itanium.
struct MemoryConfig {
  std::vector<CacheLevelConfig> Levels = {
      {"L1D", 16 * 1024, 4, 64, 2},
      {"L2", 96 * 1024, 6, 64, 9},
      {"L3", 2 * 1024 * 1024, 4, 64, 24},
  };
  /// Latency of a main-memory access.
  uint32_t MemoryLatency = 160;
};

/// Per-level and prefetch statistics.
struct MemoryStats {
  struct LevelStats {
    uint64_t Hits = 0;
    uint64_t Misses = 0;
  };
  std::vector<LevelStats> Levels;
  uint64_t DemandAccesses = 0;
  uint64_t PrefetchesIssued = 0;
  /// Prefetches that found the line already cached (useless).
  uint64_t PrefetchesRedundant = 0;
  /// Demand accesses that hit a line whose fill was still in flight.
  uint64_t LatePrefetchHits = 0;
  /// Prefetched lines used by a demand access before eviction (coverage).
  uint64_t PrefetchesUseful = 0;
  /// Prefetched lines evicted from L1 without ever being used (accuracy
  /// complement: cache pollution).
  uint64_t PrefetchesUnused = 0;
  /// Total stall cycles incurred by demand accesses.
  uint64_t StallCycles = 0;

  /// Accumulates another run's memory statistics level-wise; Levels widens
  /// to the deeper hierarchy when the two runs were configured differently.
  MemoryStats &operator+=(const MemoryStats &Other) {
    if (Levels.size() < Other.Levels.size())
      Levels.resize(Other.Levels.size());
    for (size_t I = 0; I != Other.Levels.size(); ++I) {
      Levels[I].Hits += Other.Levels[I].Hits;
      Levels[I].Misses += Other.Levels[I].Misses;
    }
    DemandAccesses += Other.DemandAccesses;
    PrefetchesIssued += Other.PrefetchesIssued;
    PrefetchesRedundant += Other.PrefetchesRedundant;
    LatePrefetchHits += Other.LatePrefetchHits;
    PrefetchesUseful += Other.PrefetchesUseful;
    PrefetchesUnused += Other.PrefetchesUnused;
    StallCycles += Other.StallCycles;
    return *this;
  }
};

/// One set-associative, LRU, timing-aware cache level.
class CacheLevel {
public:
  explicit CacheLevel(const CacheLevelConfig &Config);

  /// Probes for \p LineAddr. On hit, refreshes LRU state and returns the
  /// cycle at which the line is (or was) ready; on miss returns false.
  /// \p WasUnusedPrefetch (optional) reports whether this is the first
  /// demand touch of a prefetched line (and clears the mark).
  bool probe(uint64_t LineAddr, uint64_t &ReadyTime,
             bool *WasUnusedPrefetch = nullptr);

  /// Inserts \p LineAddr with the given ready time, evicting the LRU way.
  /// \p Prefetched marks the line as an as-yet-unused prefetch.
  void fill(uint64_t LineAddr, uint64_t ReadyTime, bool Prefetched = false);

  /// When set, incremented every time an unused prefetched line is
  /// evicted (pollution accounting).
  void setEvictUnusedCounter(uint64_t *Counter) {
    EvictUnusedCounter = Counter;
  }

  const CacheLevelConfig &config() const { return Config; }

private:
  struct Way {
    uint64_t Tag = ~0ull;
    uint64_t ReadyTime = 0;
    uint64_t LastUse = 0;
    bool Valid = false;
    bool UnusedPrefetch = false;
  };

  uint64_t *EvictUnusedCounter = nullptr;

  CacheLevelConfig Config;
  uint64_t NumSets;
  std::vector<Way> Ways; // NumSets * Associativity, set-major
  uint64_t UseClock = 0;
};

/// The full hierarchy. All timing is in CPU cycles; the caller supplies the
/// current cycle on each access.
class MemoryHierarchy {
public:
  explicit MemoryHierarchy(const MemoryConfig &Config);

  /// Demand load of \p Addr at cycle \p Now.
  /// \returns the total load-to-use latency in cycles (>= L1 hit latency).
  uint64_t demandAccess(uint64_t Addr, uint64_t Now);

  /// Non-blocking prefetch of \p Addr issued at cycle \p Now. Fills every
  /// level with ready time Now + (latency of the providing level).
  void prefetch(uint64_t Addr, uint64_t Now);

  const MemoryStats &stats() const { return Stats; }
  unsigned lineBytes() const { return LineBytes; }

private:
  uint64_t lineAddr(uint64_t Addr) const { return Addr / LineBytes; }

  /// Finds the first level holding the line. Returns the level index and
  /// its ready time, or Levels.size() on full miss.
  size_t findLine(uint64_t Line, uint64_t &ReadyTime);

  MemoryConfig Config;
  std::vector<CacheLevel> Levels;
  unsigned LineBytes;
  MemoryStats Stats;
};

} // namespace sprof

#endif // SPROF_MEMSYS_CACHE_H
