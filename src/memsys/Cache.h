//===- memsys/Cache.h - Set-associative cache hierarchy --------*- C++ -*-===//
//
// Part of the StrideProf project, a reproduction of Youfeng Wu, "Efficient
// Discovery of Regular Stride Patterns in Irregular Programs and Its Use in
// Compiler Prefetching" (PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A timing-aware cache hierarchy standing in for the paper's 733 MHz
/// Itanium memory system: 16KB 4-way L1D, 96KB 6-way unified L2, 2MB 4-way
/// unified L3 (Section 4). Lines carry a *ready time* so that prefetches
/// issued K iterations ahead (Figure 3) overlap with execution: a demand
/// load that arrives before its prefetched line is ready stalls only for
/// the remaining cycles (a "late" prefetch), which is exactly the effect
/// the paper's prefetch-distance heuristic trades against cache pollution.
///
/// The per-level storage is structure-of-arrays *per set*: each set owns
/// one contiguous block of field lanes -- [tags][ready][last-use][site] --
/// so a probe, fill, and victim scan together touch one or two host cache
/// lines instead of five scattered global arrays. The unused-prefetch mark
/// lives in the tag word's top bit (line addresses never reach it), which
/// makes a marked line fail the tag compare of the MRU fast path for free.
/// The set count is rounded up to a power of two so set selection is a
/// single mask, and each set remembers its most-recently-hit way, giving
/// demand accesses an MRU way-prediction fast path that touches one tag
/// before falling back to the associative scan. All of this is encoding
/// only: hit/miss outcomes, LRU victim choice, timing, and attribution are
/// bit-identical to the straightforward array-of-structs formulation.
///
//===----------------------------------------------------------------------===//

#ifndef SPROF_MEMSYS_CACHE_H
#define SPROF_MEMSYS_CACHE_H

#include "stream/AccessStream.h"

#include <cstdint>
#include <memory>
#include <new>
#include <string>
#include <vector>

namespace sprof {

/// Geometry and latency of one cache level.
struct CacheLevelConfig {
  std::string Name = "L1";
  uint64_t SizeBytes = 16 * 1024;
  unsigned Associativity = 4;
  unsigned LineBytes = 64;
  /// Load-to-use latency when hitting in this level.
  uint32_t HitLatency = 2;
};

/// Whole-hierarchy configuration. Defaults model the paper's Itanium.
struct MemoryConfig {
  std::vector<CacheLevelConfig> Levels = {
      {"L1D", 16 * 1024, 4, 64, 2},
      {"L2", 96 * 1024, 6, 64, 9},
      {"L3", 2 * 1024 * 1024, 4, 64, 24},
  };
  /// Latency of a main-memory access.
  uint32_t MemoryLatency = 160;
  /// When true, the pipeline asks the hierarchy for per-prefetch outcome
  /// attribution and per-site demand-miss statistics (see AttributionData).
  /// Purely additive bookkeeping: neither timing nor MemoryStats changes
  /// whether this is on or off.
  bool EnableAttribution = false;
};

/// Load-site sentinel for accesses that carry no attributable site (the
/// memsys mirror of the IR's NoId; memsys does not depend on the IR).
inline constexpr uint32_t NoSiteId = ~0u;

/// Retirement outcome of every issued prefetch. The four classes partition
/// the issued prefetches exactly: after MemoryHierarchy::finalizeAttribution
/// drains still-resident marked lines,
/// Useful + Late + Early + Redundant == MemoryStats::PrefetchesIssued.
struct PrefetchOutcomeCounts {
  /// Demand access hit a prefetched line whose fill had completed.
  uint64_t Useful = 0;
  /// Demand access arrived while the prefetched fill was still in flight
  /// (partial stall; the prefetch was issued too close to the use).
  uint64_t Late = 0;
  /// Prefetched line was evicted from L1 -- or still resident at run end --
  /// without ever being demanded (cache pollution).
  uint64_t Early = 0;
  /// The line was already in L1 (or in flight to it) when the prefetch was
  /// issued; the prefetch did nothing.
  uint64_t Redundant = 0;

  uint64_t issued() const { return Useful + Late + Early + Redundant; }

  PrefetchOutcomeCounts &operator+=(const PrefetchOutcomeCounts &Other) {
    Useful += Other.Useful;
    Late += Other.Late;
    Early += Other.Early;
    Redundant += Other.Redundant;
    return *this;
  }
};

/// Demand-access statistics attributed to one load site.
struct SiteMissStats {
  uint64_t Accesses = 0;
  uint64_t L1Misses = 0;
  /// Missed every cache level (paid the full memory latency).
  uint64_t FullMisses = 0;
  uint64_t StallCycles = 0;

  SiteMissStats &operator+=(const SiteMissStats &Other) {
    Accesses += Other.Accesses;
    L1Misses += Other.L1Misses;
    FullMisses += Other.FullMisses;
    StallCycles += Other.StallCycles;
    return *this;
  }
};

/// Per-site prefetch-outcome and demand-miss attribution. Lives beside
/// MemoryStats (never inside it) so that the pre-existing accounting is
/// bit-identical whether attribution is enabled or not. PerSite and
/// SiteMiss hold NumSites + 1 entries; the final entry collects accesses
/// and prefetches that carried NoSiteId (or an out-of-range site).
struct AttributionData {
  bool Enabled = false;
  /// Set by MemoryHierarchy::finalizeAttribution once still-resident
  /// prefetched lines have been drained into Early.
  bool Finalized = false;
  uint32_t NumSites = 0;
  PrefetchOutcomeCounts Total;
  std::vector<PrefetchOutcomeCounts> PerSite;
  std::vector<SiteMissStats> SiteMiss;

  size_t indexFor(uint32_t SiteId) const {
    return SiteId < NumSites ? SiteId : NumSites;
  }

  void recordUseful(uint32_t SiteId) {
    ++Total.Useful;
    ++PerSite[indexFor(SiteId)].Useful;
  }
  void recordLate(uint32_t SiteId) {
    ++Total.Late;
    ++PerSite[indexFor(SiteId)].Late;
  }
  void recordEarly(uint32_t SiteId) {
    ++Total.Early;
    ++PerSite[indexFor(SiteId)].Early;
  }
  void recordRedundant(uint32_t SiteId) {
    ++Total.Redundant;
    ++PerSite[indexFor(SiteId)].Redundant;
  }
};

/// Per-level and prefetch statistics.
struct MemoryStats {
  struct LevelStats {
    uint64_t Hits = 0;
    uint64_t Misses = 0;
  };
  std::vector<LevelStats> Levels;
  uint64_t DemandAccesses = 0;
  uint64_t PrefetchesIssued = 0;
  /// Prefetches that found the line already cached (useless).
  uint64_t PrefetchesRedundant = 0;
  /// Demand accesses that hit a line whose fill was still in flight.
  uint64_t LatePrefetchHits = 0;
  /// Prefetched lines used by a demand access before eviction (coverage).
  uint64_t PrefetchesUseful = 0;
  /// Prefetched lines evicted from L1 without ever being used (accuracy
  /// complement: cache pollution).
  uint64_t PrefetchesUnused = 0;
  /// Total stall cycles incurred by demand accesses.
  uint64_t StallCycles = 0;

  /// Accumulates another run's memory statistics level-wise; Levels widens
  /// to the deeper hierarchy when the two runs were configured differently.
  MemoryStats &operator+=(const MemoryStats &Other) {
    if (Levels.size() < Other.Levels.size())
      Levels.resize(Other.Levels.size());
    for (size_t I = 0; I != Other.Levels.size(); ++I) {
      Levels[I].Hits += Other.Levels[I].Hits;
      Levels[I].Misses += Other.Levels[I].Misses;
    }
    DemandAccesses += Other.DemandAccesses;
    PrefetchesIssued += Other.PrefetchesIssued;
    PrefetchesRedundant += Other.PrefetchesRedundant;
    LatePrefetchHits += Other.LatePrefetchHits;
    PrefetchesUseful += Other.PrefetchesUseful;
    PrefetchesUnused += Other.PrefetchesUnused;
    StallCycles += Other.StallCycles;
    return *this;
  }
};

/// One set-associative, LRU, timing-aware cache level.
///
/// Storage is structure-of-arrays (one contiguous lane per field, set-major)
/// and the set count is rounded up to a power of two at construction, so the
/// set index is `LineAddr & SetMask` -- behaviour-identical for any config
/// whose raw set count is already a power of two (all shipped ones), and a
/// documented capacity round-up otherwise.
class CacheLevel {
public:
  explicit CacheLevel(const CacheLevelConfig &Config);

  /// Probes for \p LineAddr. On hit, refreshes LRU state and returns the
  /// cycle at which the line is (or was) ready; on miss returns false.
  /// \p WasUnusedPrefetch (optional) reports whether this is the first
  /// demand touch of a prefetched line (and clears the mark).
  /// \p PrefetchSite (optional) receives the site that issued the prefetch
  /// (meaningful only when *WasUnusedPrefetch comes back true).
  bool probe(uint64_t LineAddr, uint64_t &ReadyTime,
             bool *WasUnusedPrefetch = nullptr,
             uint32_t *PrefetchSite = nullptr);

  /// MRU way-prediction fast probe: checks only the set's last-hit way.
  /// Returns true -- refreshing LRU exactly as probe() would -- only for a
  /// plain hit on an *unmarked* line; a line still carrying its
  /// unused-prefetch mark has the mark bit set in its tag word, fails the
  /// exact compare, and so deliberately falls back to the full probe()
  /// which observes (and clears) the first demand touch for outcome
  /// attribution. A false return means "take the slow path", not "miss".
  bool probeMru(uint64_t LineAddr, uint64_t &ReadyTime) {
    uint64_t Set = LineAddr & SetMask;
    uint64_t *B = Blocks.get() + Set * BlockStride;
    uint32_t W = Mru[Set];
    if (B[W] != LineAddr)
      return false;
    B[Assoc + W] = ++UseClock;
    ReadyTime = B[2 * Assoc + W];
    return true;
  }

  /// Inserts \p LineAddr with the given ready time, evicting the LRU way.
  /// \p Prefetched marks the line as an as-yet-unused prefetch issued by
  /// load site \p PrefetchSite.
  ///
  /// Refresh path (line already resident): the entry keeps its prefetch
  /// mark and issuing site untouched (so attribution still retires the
  /// original prefetch), its ready time becomes the *earlier* of the two
  /// fills, and its LRU stamp is bumped as a fresh touch. This path is
  /// reachable from MemoryHierarchy::prefetch on a full miss, which fills
  /// every level and then re-fills them in its completion pass -- the
  /// second fill of each line refreshes (one extra LRU bump per level).
  /// tests/test_memsys.cpp pins this behaviour.
  void fill(uint64_t LineAddr, uint64_t ReadyTime, bool Prefetched = false,
            uint32_t PrefetchSite = NoSiteId);

  /// Hints the host CPU to pull this line's set block (tag and LRU lanes)
  /// into its own cache. Pure host-side latency hiding for the probe/fill
  /// that is about to happen -- no simulated state is touched.
  void prefetchSet(uint64_t LineAddr) const {
#if defined(__GNUC__) || defined(__clang__)
    const uint64_t *B = Blocks.get() + (LineAddr & SetMask) * BlockStride;
    __builtin_prefetch(B);
    __builtin_prefetch(B + 2 * Assoc);
#else
    (void)LineAddr;
#endif
  }

  /// Combined probe-or-fill miss half: inserts \p LineAddr exactly like
  /// fill() but skips the refresh scan. Only valid when the caller has
  /// just probed this level for the same line and missed (the demand-path
  /// fills in MemoryHierarchy::demandAccess), so the refresh scan is
  /// guaranteed to find nothing.
  void fillMiss(uint64_t LineAddr, uint64_t ReadyTime, bool Prefetched = false,
                uint32_t PrefetchSite = NoSiteId);

  /// When set, incremented every time an unused prefetched line is
  /// evicted (pollution accounting).
  void setEvictUnusedCounter(uint64_t *Counter) {
    EvictUnusedCounter = Counter;
  }

  /// When set, unused-prefetch evictions are also credited as Early
  /// outcomes against the issuing site.
  void setAttribution(AttributionData *A) { Attr = A; }

  /// Credits every still-resident unused prefetched line as Early and
  /// clears the marks (so a second drain finds nothing). Called by
  /// MemoryHierarchy::finalizeAttribution at end of run.
  void drainUnusedPrefetches(AttributionData &A);

  const CacheLevelConfig &config() const { return Config; }

  /// Actual set count after the power-of-two round-up.
  uint64_t numSets() const { return NumSets; }

private:
  /// Tag-word bit carrying the unused-prefetch mark. Line addresses are
  /// byte addresses divided by the line size; fillMiss asserts they stay
  /// below it.
  static constexpr uint64_t MarkBit = 1ull << 63;
  /// Tag-lane value marking an empty way (mark bit set plus every address
  /// bit, so it matches neither an exact nor a mark-masked compare).
  static constexpr uint64_t InvalidTag = ~0ull;

  uint64_t *EvictUnusedCounter = nullptr;
  AttributionData *Attr = nullptr;

  CacheLevelConfig Config;
  uint64_t NumSets;
  uint64_t SetMask;
  unsigned Assoc;
  /// BlockStride = 4 * Assoc u64 words per set.
  size_t BlockStride;
  /// Lane storage is aligned to (and advised toward) 2MB transparent huge
  /// pages: a large level's randomly-indexed blocks would otherwise pay a
  /// host-dTLB walk on nearly every probe, the same problem SimMemory's
  /// slab pool solves for the simulated image.
  static constexpr size_t BlockAlign = 2ull << 20;
  struct BlockDeleter {
    void operator()(uint64_t *P) const {
      ::operator delete(P, std::align_val_t(BlockAlign));
    }
  };
  /// Per-set field lanes, one contiguous block per set:
  ///   words [0, A)   tag | mark-bit (InvalidTag when empty)
  ///   words [A, 2A)  LRU use stamp
  ///   words [2A, 3A) ready time
  ///   words [3A, 4A) issuing prefetch site
  /// where A = Assoc. Tags and use stamps lead the block so the dominant
  /// full-miss path (tag scan + LRU victim scan + fill) *loads* only from
  /// the block's first host cache line at 4-way; ready/site in the tail
  /// are written (store-buffered, non-stalling) on a fill and loaded only
  /// on a hit. NumSets * BlockStride words total.
  std::unique_ptr<uint64_t[], BlockDeleter> Blocks;
  /// Per-set index of the most-recently-hit (or -filled) way.
  std::vector<uint32_t> Mru;
  uint64_t UseClock = 0;
};

/// The full hierarchy. All timing is in CPU cycles; the caller supplies the
/// current cycle on each access.
class MemoryHierarchy {
public:
  explicit MemoryHierarchy(const MemoryConfig &Config);

  /// Host-side prefetch of every level's set block for \p Addr's line:
  /// pure latency hiding, issued by the engines as soon as a load address
  /// is known so the lane fetches overlap the simulated-memory read that
  /// precedes the demandAccess/prefetch of the same address. Touches no
  /// simulated state.
  void prefetchLanes(uint64_t Addr) const {
    uint64_t Line = lineAddr(Addr);
    for (const CacheLevel &L : Levels)
      L.prefetchSet(Line);
  }

  /// Demand load of \p Addr at cycle \p Now, attributed to load site
  /// \p SiteId when attribution is enabled.
  /// \returns the total load-to-use latency in cycles (>= L1 hit latency).
  ///
  /// The combined probe-or-fill entry point: the MRU-predicted L1 hit
  /// (the overwhelmingly common case) completes here, inline in the
  /// caller, in a handful of instructions; everything else -- L1 scan
  /// hit, lower-level hit, full miss and its fills -- takes the
  /// out-of-line slow path. The fast path is the general path specialised
  /// for Hit == 0 and FirstPrefetchUse == false (prefetch-marked lines
  /// fail probeMru by design so attribution observes their first touch).
  uint64_t demandAccess(uint64_t Addr, uint64_t Now,
                        uint32_t SiteId = NoSiteId) {
    ++Stats.DemandAccesses;
    uint64_t Line = lineAddr(Addr);
    uint64_t ReadyTime;
    if (Levels[0].probeMru(Line, ReadyTime)) {
      uint64_t Latency = L1HitLatency;
      if (ReadyTime > Now && ReadyTime - Now > Latency)
        Latency = ReadyTime - Now;
      ++Stats.Levels[0].Hits;
      Stats.StallCycles += Latency;
      if (Attr.Enabled) {
        SiteMissStats &SM = Attr.SiteMiss[Attr.indexFor(SiteId)];
        ++SM.Accesses;
        SM.StallCycles += Latency;
      }
      return Latency;
    }
    return demandAccessSlow(Line, Now, SiteId);
  }

  /// Non-blocking prefetch of \p Addr issued at cycle \p Now by load site
  /// \p SiteId. Fills every level with ready time Now + (latency of the
  /// providing level).
  void prefetch(uint64_t Addr, uint64_t Now, uint32_t SiteId = NoSiteId);

  /// Stream-driven entry point: applies one access event at cycle \p Now.
  /// Load events are demand accesses and return their load-to-use latency;
  /// Prefetch events issue a non-blocking prefetch and return 0. This is
  /// how replayed and external traces drive the hierarchy; the engines'
  /// hot paths call demandAccess/prefetch directly with the same effect.
  uint64_t access(const AccessEvent &E, uint64_t Now) {
    if (E.Kind == AccessKind::Prefetch) {
      prefetch(E.Address, Now, E.SiteId);
      return 0;
    }
    return demandAccess(E.Address, Now, E.SiteId);
  }

  /// Turns on prefetch-outcome and per-site demand-miss attribution for
  /// sites [0, NumSites). Must be called before any traffic; resets any
  /// previously collected attribution. MemoryStats is unaffected.
  void enableAttribution(uint32_t NumSites);

  /// Classifies still-resident prefetched lines as Early so the outcome
  /// classes exactly partition the issued prefetches. Idempotent; call
  /// once the run's traffic is complete.
  void finalizeAttribution();

  const AttributionData &attribution() const { return Attr; }

  const MemoryStats &stats() const { return Stats; }
  unsigned lineBytes() const { return LineBytes; }

private:
  /// Per-access address-to-line mapping: a shift for the (universal)
  /// power-of-two line sizes, a division otherwise. The branch is
  /// perfectly predicted; the division it avoids is not cheap.
  uint64_t lineAddr(uint64_t Addr) const {
    return LineBytesPow2 ? (Addr >> LineShift) : (Addr / LineBytes);
  }

  /// demandAccess continuation once the L1 fast probe has failed.
  uint64_t demandAccessSlow(uint64_t Line, uint64_t Now, uint32_t SiteId);

  /// Finds the first level holding the line. Returns the level index and
  /// its ready time, or Levels.size() on full miss.
  size_t findLine(uint64_t Line, uint64_t &ReadyTime);

  MemoryConfig Config;
  std::vector<CacheLevel> Levels;
  unsigned LineBytes;
  bool LineBytesPow2;
  unsigned LineShift;
  /// Cached Levels[0] hit latency for the demand-access fast path.
  uint64_t L1HitLatency;
  MemoryStats Stats;
  AttributionData Attr;
};

/// Timing convention for replaying a bare access stream against a
/// hierarchy (no interpreter around to charge cycles): each event takes
/// one issue cycle, and a load additionally stalls for the part of its
/// latency beyond \c HiddenLatency (mirroring the interpreter's flat
/// load-issue assumption, TimingModel::FlatLoadLatency).
struct StreamReplayConfig {
  uint32_t IssueCost = 1;
  uint32_t HiddenLatency = 2;
  size_t BatchSize = 256;
};

/// Accounting of one stream replay pass.
struct StreamReplayStats {
  uint64_t Events = 0;
  uint64_t Loads = 0;
  uint64_t Prefetches = 0;
  uint64_t Cycles = 0;      ///< issue + stall
  uint64_t StallCycles = 0; ///< latency beyond HiddenLatency, loads only
};

/// Drains \p Src through \p MH under the StreamReplayConfig timing
/// convention. The hierarchy's own MemoryStats/attribution accumulate as
/// with live traffic.
StreamReplayStats replayAccessStream(MemoryHierarchy &MH, AccessSource &Src,
                                     const StreamReplayConfig &Config = {});

} // namespace sprof

#endif // SPROF_MEMSYS_CACHE_H
