//===- memsys/Cache.cpp - Set-associative cache hierarchy ------------------===//
//
// Part of the StrideProf project (see Cache.h for the project reference).
//
//===----------------------------------------------------------------------===//

#include "memsys/Cache.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>

#if defined(__linux__)
#include <sys/mman.h>
#endif

using namespace sprof;

CacheLevel::CacheLevel(const CacheLevelConfig &Config) : Config(Config) {
  assert(Config.SizeBytes % (Config.LineBytes * Config.Associativity) == 0 &&
         "cache size must be a whole number of sets");
  uint64_t RawSets = Config.SizeBytes / (Config.LineBytes * Config.Associativity);
  assert(RawSets > 0 && "cache must have at least one set");
  // Round the set count up to a power of two so set selection is a mask.
  // Every shipped configuration is already a power of two; a non-pow2
  // config gains capacity rather than aliasing sets.
  NumSets = std::bit_ceil(RawSets);
  SetMask = NumSets - 1;
  Assoc = Config.Associativity;
  BlockStride = 4 * static_cast<size_t>(Assoc);
  // Carve the lane storage from 2MB-aligned, huge-page-advised memory (see
  // the member comment in Cache.h): the L3 block array alone is ~1MB and
  // is indexed randomly, so 4KB pages would cost a dTLB walk per probe.
  size_t Words = NumSets * BlockStride;
  size_t Bytes = (Words * sizeof(uint64_t) + BlockAlign - 1) &
                 ~(BlockAlign - 1);
  auto *Raw =
      static_cast<uint64_t *>(::operator new(Bytes, std::align_val_t(BlockAlign)));
#if defined(__linux__)
  ::madvise(Raw, Bytes, MADV_HUGEPAGE);
#endif
  std::memset(Raw, 0, Words * sizeof(uint64_t));
  Blocks.reset(Raw);
  for (uint64_t Set = 0; Set != NumSets; ++Set) {
    uint64_t *B = Blocks.get() + Set * BlockStride;
    for (unsigned W = 0; W != Assoc; ++W) {
      B[W] = InvalidTag;
      B[3 * Assoc + W] = NoSiteId;
    }
  }
  Mru.assign(NumSets, 0);
}

bool CacheLevel::probe(uint64_t LineAddr, uint64_t &ReadyTime,
                       bool *WasUnusedPrefetch, uint32_t *PrefetchSite) {
  uint64_t Set = LineAddr & SetMask;
  uint64_t *B = Blocks.get() + Set * BlockStride;
  for (unsigned W = 0; W != Assoc; ++W) {
    uint64_t T = B[W];
    if ((T & ~MarkBit) == LineAddr) {
      B[Assoc + W] = ++UseClock;
      Mru[Set] = W;
      ReadyTime = B[2 * Assoc + W];
      if (WasUnusedPrefetch) {
        *WasUnusedPrefetch = (T & MarkBit) != 0;
        B[W] = LineAddr; // clear the mark; the site word is left stale
      }
      if (PrefetchSite)
        *PrefetchSite = static_cast<uint32_t>(B[3 * Assoc + W]);
      return true;
    }
  }
  return false;
}

void CacheLevel::fill(uint64_t LineAddr, uint64_t ReadyTime, bool Prefetched,
                      uint32_t PrefetchSite) {
  uint64_t Set = LineAddr & SetMask;
  uint64_t *B = Blocks.get() + Set * BlockStride;
  // Refresh an existing entry for the same line: earliest ready time wins,
  // the touch bumps LRU recency, and the prefetch mark/site stay untouched
  // (the original prefetch still owns the line's outcome). See the header
  // comment for when this path is reached.
  for (unsigned W = 0; W != Assoc; ++W) {
    if ((B[W] & ~MarkBit) == LineAddr) {
      B[2 * Assoc + W] = std::min(B[2 * Assoc + W], ReadyTime);
      B[Assoc + W] = ++UseClock;
      Mru[Set] = W;
      return;
    }
  }
  fillMiss(LineAddr, ReadyTime, Prefetched, PrefetchSite);
}

void CacheLevel::fillMiss(uint64_t LineAddr, uint64_t ReadyTime,
                          bool Prefetched, uint32_t PrefetchSite) {
  assert(LineAddr < MarkBit && "line address collides with the mark bit");
  uint64_t Set = LineAddr & SetMask;
  uint64_t *B = Blocks.get() + Set * BlockStride;
  // Victim: first invalid way, else LRU.
  unsigned Victim = 0;
  for (unsigned W = 0; W != Assoc; ++W) {
    if (B[W] == InvalidTag) {
      Victim = W;
      break;
    }
    if (B[Assoc + W] < B[Assoc + Victim])
      Victim = W;
  }
  uint64_t VT = B[Victim];
  if (VT != InvalidTag && (VT & MarkBit)) {
    if (EvictUnusedCounter)
      ++*EvictUnusedCounter;
    if (Attr)
      Attr->recordEarly(static_cast<uint32_t>(B[3 * Assoc + Victim]));
  }
  B[Victim] = Prefetched ? (LineAddr | MarkBit) : LineAddr;
  B[2 * Assoc + Victim] = ReadyTime;
  B[Assoc + Victim] = ++UseClock;
  B[3 * Assoc + Victim] = PrefetchSite;
  Mru[Set] = Victim;
}

void CacheLevel::drainUnusedPrefetches(AttributionData &A) {
  for (uint64_t Set = 0; Set != NumSets; ++Set) {
    uint64_t *B = Blocks.get() + Set * BlockStride;
    for (unsigned W = 0; W != Assoc; ++W) {
      uint64_t T = B[W];
      if (T != InvalidTag && (T & MarkBit)) {
        A.recordEarly(static_cast<uint32_t>(B[3 * Assoc + W]));
        B[W] = T & ~MarkBit;
      }
    }
  }
}

MemoryHierarchy::MemoryHierarchy(const MemoryConfig &Config)
    : Config(Config) {
  assert(!Config.Levels.empty() && "hierarchy needs at least one level");
  LineBytes = Config.Levels.front().LineBytes;
  LineBytesPow2 = std::has_single_bit(static_cast<uint64_t>(LineBytes));
  LineShift = LineBytesPow2
                  ? std::countr_zero(static_cast<uint64_t>(LineBytes))
                  : 0;
  for (const CacheLevelConfig &L : Config.Levels) {
    assert(L.LineBytes == LineBytes &&
           "all levels must share one line size");
    Levels.emplace_back(L);
  }
  L1HitLatency = Config.Levels.front().HitLatency;
  Stats.Levels.resize(Levels.size());
  // Prefetch usefulness is accounted at the L1 level.
  Levels.front().setEvictUnusedCounter(&Stats.PrefetchesUnused);
}

size_t MemoryHierarchy::findLine(uint64_t Line, uint64_t &ReadyTime) {
  for (size_t L = 0; L != Levels.size(); ++L)
    if (Levels[L].probe(Line, ReadyTime))
      return L;
  return Levels.size();
}

uint64_t MemoryHierarchy::demandAccessSlow(uint64_t Line, uint64_t Now,
                                           uint32_t SiteId) {
  uint64_t ReadyTime = 0;
  // Overlap the lower levels' lane fetches with the L1 scan: their set
  // rows live in arrays large enough to miss the *host* cache on
  // pointer-chasing workloads.
  for (size_t L = 1; L < Levels.size(); ++L)
    Levels[L].prefetchSet(Line);
  // Probe L1 separately so first use of a prefetched line is observed.
  size_t Hit;
  bool FirstPrefetchUse = false;
  uint32_t PrefetchSite = NoSiteId;
  if (Levels[0].probe(Line, ReadyTime, &FirstPrefetchUse, &PrefetchSite)) {
    Hit = 0;
    if (FirstPrefetchUse)
      ++Stats.PrefetchesUseful;
  } else {
    Hit = Levels.size();
    for (size_t L = 1; L != Levels.size(); ++L)
      if (Levels[L].probe(Line, ReadyTime)) {
        Hit = L;
        break;
      }
  }

  uint64_t Latency;
  bool StillInFlight = false;
  if (Hit == Levels.size()) {
    // Full miss: stall to memory. Every level was just probed and missed,
    // so the fills can skip the refresh scan.
    Latency = Config.MemoryLatency;
    ++Stats.Levels.back().Misses;
    for (size_t L = 0; L != Levels.size(); ++L) {
      if (L < Levels.size() - 1)
        ++Stats.Levels[L].Misses;
      Levels[L].fillMiss(Line, Now + Latency);
    }
  } else {
    // Hit at level Hit; latency is that level's hit latency, plus any
    // residual fill time when the line is still in flight (from a late
    // prefetch or an overlapping demand fill of the same line).
    Latency = Levels[Hit].config().HitLatency;
    if (ReadyTime > Now) {
      StillInFlight = true;
      Latency = std::max<uint64_t>(Latency, ReadyTime - Now);
      if (FirstPrefetchUse)
        ++Stats.LatePrefetchHits;
    }
    ++Stats.Levels[Hit].Hits;
    for (size_t L = 0; L != Hit; ++L) {
      ++Stats.Levels[L].Misses;
      Levels[L].fillMiss(Line, Now + Latency);
    }
  }
  // The first hit-latency cycles overlap with the pipeline's base load
  // cost; report the full latency and let the caller discount.
  Stats.StallCycles += Latency;
  if (Attr.Enabled) {
    // First demand touch of a prefetched line retires that prefetch: the
    // outcome (and the stall it saved or caused) is credited to the site
    // that issued it, not the site that happened to consume the line.
    if (FirstPrefetchUse) {
      if (StillInFlight)
        Attr.recordLate(PrefetchSite);
      else
        Attr.recordUseful(PrefetchSite);
    }
    SiteMissStats &SM = Attr.SiteMiss[Attr.indexFor(SiteId)];
    ++SM.Accesses;
    if (Hit != 0)
      ++SM.L1Misses;
    if (Hit == Levels.size())
      ++SM.FullMisses;
    SM.StallCycles += Latency;
  }
  return Latency;
}

void MemoryHierarchy::prefetch(uint64_t Addr, uint64_t Now, uint32_t SiteId) {
  ++Stats.PrefetchesIssued;
  uint64_t Line = lineAddr(Addr);
  uint64_t ReadyTime = 0;
  size_t Hit = findLine(Line, ReadyTime);
  if (Hit == 0) {
    ++Stats.PrefetchesRedundant;
    if (Attr.Enabled)
      Attr.recordRedundant(SiteId);
    return; // already (or about to be) in L1
  }
  uint64_t Latency = Hit == Levels.size() ? Config.MemoryLatency
                                          : Levels[Hit].config().HitLatency;
  uint64_t Ready = Now + Latency;
  if (Hit != Levels.size() && ReadyTime > Now)
    Ready = std::max(Ready, ReadyTime);
  // Levels below the providing one were just probed and missed. On a full
  // miss this first pass covers every level, and the completion pass below
  // re-fills them through the refresh path (earliest-ready-time merge plus
  // one extra LRU touch per level) -- pinned in tests/test_memsys.cpp.
  for (size_t L = 0; L != Hit && L != Levels.size(); ++L)
    Levels[L].fillMiss(Line, Ready, /*Prefetched=*/L == 0,
                       L == 0 ? SiteId : NoSiteId);
  if (Hit == Levels.size())
    for (size_t L = 0; L != Levels.size(); ++L)
      Levels[L].fill(Line, Ready, /*Prefetched=*/L == 0,
                     L == 0 ? SiteId : NoSiteId);
}

void MemoryHierarchy::enableAttribution(uint32_t NumSites) {
  Attr.Enabled = true;
  Attr.Finalized = false;
  Attr.NumSites = NumSites;
  Attr.Total = PrefetchOutcomeCounts();
  Attr.PerSite.assign(NumSites + 1, PrefetchOutcomeCounts());
  Attr.SiteMiss.assign(NumSites + 1, SiteMissStats());
  Levels.front().setAttribution(&Attr);
}

void MemoryHierarchy::finalizeAttribution() {
  if (!Attr.Enabled || Attr.Finalized)
    return;
  // A non-redundant prefetch marks exactly one L1 line; every mark is
  // cleared by first demand use (Useful/Late) or eviction (Early). Marks
  // still resident now never helped anyone: drain them into Early so the
  // four classes partition PrefetchesIssued exactly.
  Levels.front().drainUnusedPrefetches(Attr);
  Attr.Finalized = true;
}

StreamReplayStats sprof::replayAccessStream(MemoryHierarchy &MH,
                                            AccessSource &Src,
                                            const StreamReplayConfig &Config) {
  StreamReplayStats S;
  std::vector<AccessEvent> Buf(Config.BatchSize ? Config.BatchSize : 1);
  uint64_t Now = 0;
  while (size_t N = Src.pull(Buf.data(), Buf.size())) {
    for (size_t I = 0; I < N; ++I) {
      const AccessEvent &E = Buf[I];
      Now += Config.IssueCost;
      if (E.Kind == AccessKind::Prefetch) {
        MH.prefetch(E.Address, Now, E.SiteId);
        ++S.Prefetches;
      } else {
        const uint64_t Latency = MH.demandAccess(E.Address, Now, E.SiteId);
        const uint64_t Stall =
            Latency > Config.HiddenLatency ? Latency - Config.HiddenLatency
                                           : 0;
        Now += Stall;
        S.StallCycles += Stall;
        ++S.Loads;
      }
      ++S.Events;
    }
  }
  S.Cycles = Now;
  return S;
}
