//===- memsys/Cache.cpp - Set-associative cache hierarchy ------------------===//
//
// Part of the StrideProf project (see Cache.h for the project reference).
//
//===----------------------------------------------------------------------===//

#include "memsys/Cache.h"

#include <algorithm>
#include <cassert>

using namespace sprof;

CacheLevel::CacheLevel(const CacheLevelConfig &Config) : Config(Config) {
  assert(Config.SizeBytes % (Config.LineBytes * Config.Associativity) == 0 &&
         "cache size must be a whole number of sets");
  NumSets = Config.SizeBytes / (Config.LineBytes * Config.Associativity);
  Ways.resize(NumSets * Config.Associativity);
}

bool CacheLevel::probe(uint64_t LineAddr, uint64_t &ReadyTime,
                       bool *WasUnusedPrefetch, uint32_t *PrefetchSite) {
  uint64_t Set = LineAddr % NumSets;
  Way *Base = &Ways[Set * Config.Associativity];
  for (unsigned W = 0; W != Config.Associativity; ++W) {
    Way &Entry = Base[W];
    if (Entry.Valid && Entry.Tag == LineAddr) {
      Entry.LastUse = ++UseClock;
      ReadyTime = Entry.ReadyTime;
      if (WasUnusedPrefetch) {
        *WasUnusedPrefetch = Entry.UnusedPrefetch;
        Entry.UnusedPrefetch = false;
      }
      if (PrefetchSite)
        *PrefetchSite = Entry.PrefetchSite;
      return true;
    }
  }
  return false;
}

void CacheLevel::fill(uint64_t LineAddr, uint64_t ReadyTime, bool Prefetched,
                      uint32_t PrefetchSite) {
  uint64_t Set = LineAddr % NumSets;
  Way *Base = &Ways[Set * Config.Associativity];
  // Reuse an existing entry for the same line (refresh ready time; keep the
  // entry's prefetch mark and site untouched).
  for (unsigned W = 0; W != Config.Associativity; ++W) {
    Way &Entry = Base[W];
    if (Entry.Valid && Entry.Tag == LineAddr) {
      Entry.ReadyTime = std::min(Entry.ReadyTime, ReadyTime);
      Entry.LastUse = ++UseClock;
      return;
    }
  }
  // Victim: first invalid way, else LRU.
  Way *Victim = Base;
  for (unsigned W = 0; W != Config.Associativity; ++W) {
    Way &Entry = Base[W];
    if (!Entry.Valid) {
      Victim = &Entry;
      break;
    }
    if (Entry.LastUse < Victim->LastUse)
      Victim = &Entry;
  }
  if (Victim->Valid && Victim->UnusedPrefetch) {
    if (EvictUnusedCounter)
      ++*EvictUnusedCounter;
    if (Attr)
      Attr->recordEarly(Victim->PrefetchSite);
  }
  Victim->Valid = true;
  Victim->Tag = LineAddr;
  Victim->ReadyTime = ReadyTime;
  Victim->LastUse = ++UseClock;
  Victim->UnusedPrefetch = Prefetched;
  Victim->PrefetchSite = PrefetchSite;
}

void CacheLevel::drainUnusedPrefetches(AttributionData &A) {
  for (Way &Entry : Ways)
    if (Entry.Valid && Entry.UnusedPrefetch) {
      A.recordEarly(Entry.PrefetchSite);
      Entry.UnusedPrefetch = false;
    }
}

MemoryHierarchy::MemoryHierarchy(const MemoryConfig &Config)
    : Config(Config) {
  assert(!Config.Levels.empty() && "hierarchy needs at least one level");
  LineBytes = Config.Levels.front().LineBytes;
  for (const CacheLevelConfig &L : Config.Levels) {
    assert(L.LineBytes == LineBytes &&
           "all levels must share one line size");
    Levels.emplace_back(L);
  }
  Stats.Levels.resize(Levels.size());
  // Prefetch usefulness is accounted at the L1 level.
  Levels.front().setEvictUnusedCounter(&Stats.PrefetchesUnused);
}

size_t MemoryHierarchy::findLine(uint64_t Line, uint64_t &ReadyTime) {
  for (size_t L = 0; L != Levels.size(); ++L)
    if (Levels[L].probe(Line, ReadyTime))
      return L;
  return Levels.size();
}

uint64_t MemoryHierarchy::demandAccess(uint64_t Addr, uint64_t Now,
                                       uint32_t SiteId) {
  ++Stats.DemandAccesses;
  uint64_t Line = lineAddr(Addr);
  uint64_t ReadyTime = 0;
  // Probe L1 separately so first use of a prefetched line is observed.
  size_t Hit;
  bool FirstPrefetchUse = false;
  uint32_t PrefetchSite = NoSiteId;
  if (Levels[0].probe(Line, ReadyTime, &FirstPrefetchUse, &PrefetchSite)) {
    Hit = 0;
    if (FirstPrefetchUse)
      ++Stats.PrefetchesUseful;
  } else {
    Hit = Levels.size();
    for (size_t L = 1; L != Levels.size(); ++L)
      if (Levels[L].probe(Line, ReadyTime)) {
        Hit = L;
        break;
      }
  }

  uint64_t Latency;
  bool StillInFlight = false;
  if (Hit == Levels.size()) {
    // Full miss: stall to memory.
    Latency = Config.MemoryLatency;
    ++Stats.Levels.back().Misses;
    for (size_t L = 0; L != Levels.size(); ++L) {
      if (L < Levels.size() - 1)
        ++Stats.Levels[L].Misses;
      Levels[L].fill(Line, Now + Latency);
    }
  } else {
    // Hit at level Hit; latency is that level's hit latency, plus any
    // residual fill time when the line is still in flight (from a late
    // prefetch or an overlapping demand fill of the same line).
    Latency = Levels[Hit].config().HitLatency;
    if (ReadyTime > Now) {
      StillInFlight = true;
      Latency = std::max<uint64_t>(Latency, ReadyTime - Now);
      if (FirstPrefetchUse)
        ++Stats.LatePrefetchHits;
    }
    ++Stats.Levels[Hit].Hits;
    for (size_t L = 0; L != Hit; ++L) {
      ++Stats.Levels[L].Misses;
      Levels[L].fill(Line, Now + Latency);
    }
  }
  // The first hit-latency cycles overlap with the pipeline's base load
  // cost; report the full latency and let the caller discount.
  Stats.StallCycles += Latency;
  if (Attr.Enabled) {
    // First demand touch of a prefetched line retires that prefetch: the
    // outcome (and the stall it saved or caused) is credited to the site
    // that issued it, not the site that happened to consume the line.
    if (FirstPrefetchUse) {
      if (StillInFlight)
        Attr.recordLate(PrefetchSite);
      else
        Attr.recordUseful(PrefetchSite);
    }
    SiteMissStats &SM = Attr.SiteMiss[Attr.indexFor(SiteId)];
    ++SM.Accesses;
    if (Hit != 0)
      ++SM.L1Misses;
    if (Hit == Levels.size())
      ++SM.FullMisses;
    SM.StallCycles += Latency;
  }
  return Latency;
}

void MemoryHierarchy::prefetch(uint64_t Addr, uint64_t Now, uint32_t SiteId) {
  ++Stats.PrefetchesIssued;
  uint64_t Line = lineAddr(Addr);
  uint64_t ReadyTime = 0;
  size_t Hit = findLine(Line, ReadyTime);
  if (Hit == 0) {
    ++Stats.PrefetchesRedundant;
    if (Attr.Enabled)
      Attr.recordRedundant(SiteId);
    return; // already (or about to be) in L1
  }
  uint64_t Latency = Hit == Levels.size() ? Config.MemoryLatency
                                          : Levels[Hit].config().HitLatency;
  uint64_t Ready = Now + Latency;
  if (Hit != Levels.size() && ReadyTime > Now)
    Ready = std::max(Ready, ReadyTime);
  for (size_t L = 0; L != Hit && L != Levels.size(); ++L)
    Levels[L].fill(Line, Ready, /*Prefetched=*/L == 0,
                   L == 0 ? SiteId : NoSiteId);
  if (Hit == Levels.size())
    for (size_t L = 0; L != Levels.size(); ++L)
      Levels[L].fill(Line, Ready, /*Prefetched=*/L == 0,
                     L == 0 ? SiteId : NoSiteId);
}

void MemoryHierarchy::enableAttribution(uint32_t NumSites) {
  Attr.Enabled = true;
  Attr.Finalized = false;
  Attr.NumSites = NumSites;
  Attr.Total = PrefetchOutcomeCounts();
  Attr.PerSite.assign(NumSites + 1, PrefetchOutcomeCounts());
  Attr.SiteMiss.assign(NumSites + 1, SiteMissStats());
  Levels.front().setAttribution(&Attr);
}

void MemoryHierarchy::finalizeAttribution() {
  if (!Attr.Enabled || Attr.Finalized)
    return;
  // A non-redundant prefetch marks exactly one L1 line; every mark is
  // cleared by first demand use (Useful/Late) or eviction (Early). Marks
  // still resident now never helped anyone: drain them into Early so the
  // four classes partition PrefetchesIssued exactly.
  Levels.front().drainUnusedPrefetches(Attr);
  Attr.Finalized = true;
}

