//===- prefetch/PrefetchInsertion.h - Prefetch code generation --*- C++ -*-===//
//
// Part of the StrideProf project, a reproduction of Youfeng Wu, "Efficient
// Discovery of Regular Stride Patterns in Irregular Programs and Its Use in
// Compiler Prefetching" (PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Inserts the prefetching code sequences of paper Section 2.2 / Figure 3
/// for the decisions produced by the feedback pass:
///
///   * SSST  -- "prefetch (P + K*S)" with a compile-time-constant offset,
///              one instruction before the load (Figure 3c). Out-loop SSST
///              loads use the fixed distance selected by feedback.
///   * PMST  -- save the previous address in a scratch register, subtract
///              to get the runtime stride, and "prefetch (P + K*stride)"
///              with K a power of two so the multiply is a shift
///              (Figure 3d).
///   * WSST  -- like PMST but the prefetch is guarded by the predicate
///              "stride == profiled stride" (Figure 3e, Itanium
///              predication).
///
/// The inserted instructions are ordinary program code (not
/// instrumentation): their cycles are part of the measured run, exactly the
/// overhead the paper's selective classification is designed to keep small.
///
//===----------------------------------------------------------------------===//

#ifndef SPROF_PREFETCH_PREFETCHINSERTION_H
#define SPROF_PREFETCH_PREFETCHINSERTION_H

#include "feedback/Classifier.h"
#include "ir/Module.h"

#include <cstdint>

namespace sprof {

/// Statistics about what was inserted (for benches and tests).
struct PrefetchInsertionStats {
  unsigned SsstPrefetches = 0;
  unsigned PmstPrefetches = 0;
  unsigned WsstPrefetches = 0;
  unsigned OutLoopPrefetches = 0;
  unsigned DependentPrefetches = 0;
  unsigned InstructionsAdded = 0;
};

/// Applies \p Decisions to \p M in place. \p M must be a fresh copy of the
/// module the feedback pass analyzed (same load site numbering).
PrefetchInsertionStats insertPrefetches(
    Module &M, const std::vector<PrefetchDecision> &Decisions);

/// Applies the full feedback result, including dependent-prefetch plans
/// (Section 6 future work): for each plan, a speculative load chases the
/// base pointer K strides ahead and a prefetch touches the dependent
/// load's target line through it. \p Obs (optional) receives a
/// "prefetch-insert" trace span and per-kind insertion counters.
PrefetchInsertionStats insertPrefetches(Module &M,
                                        const FeedbackResult &Feedback,
                                        ObsSession *Obs = nullptr);

} // namespace sprof

#endif // SPROF_PREFETCH_PREFETCHINSERTION_H
