//===- prefetch/PrefetchInsertion.cpp - Prefetch code generation -----------===//
//
// Part of the StrideProf project (see PrefetchInsertion.h for the project
// reference).
//
//===----------------------------------------------------------------------===//

#include "prefetch/PrefetchInsertion.h"

#include "obs/Obs.h"
#include "obs/Trace.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <tuple>

using namespace sprof;

namespace {

unsigned log2Exact(unsigned K) {
  unsigned L = 0;
  while ((1u << L) < K)
    ++L;
  assert((1u << L) == K && "PMST distance must be a power of two");
  return L;
}

/// Builds the instruction sequence to insert before one load.
std::vector<Instruction> buildSequence(Function &F,
                                       const Instruction &LoadInst,
                                       const PrefetchDecision &D,
                                       PrefetchInsertionStats &Stats) {
  std::vector<Instruction> Code;
  Reg AddrReg = LoadInst.A.getReg();

  auto Prefetch = [&](Reg Base, int64_t Offset, Reg Pred) {
    Instruction P;
    P.Op = Opcode::Prefetch;
    P.A = Operand::reg(Base);
    P.Imm = Offset;
    P.Pred = Pred;
    // Carry the covered load's site so the memory system can attribute
    // this prefetch's outcome back to the decision that inserted it.
    P.SiteId = D.SiteId;
    Code.push_back(P);
  };

  switch (D.Kind) {
  case StrideClass::SSST: {
    // prefetch (P + K*S): single instruction, compile-time constant.
    int64_t Ahead = static_cast<int64_t>(D.Distance) * D.StrideValue;
    Prefetch(AddrReg, LoadInst.Imm + Ahead, NoReg);
    ++Stats.SsstPrefetches;
    if (!D.InLoop)
      ++Stats.OutLoopPrefetches;
    break;
  }
  case StrideClass::PMST: {
    // tmp    = P (effective address)
    // stride = tmp - prev
    // prev   = tmp
    // pf     = tmp + (stride << log2 K)
    // prefetch (pf)
    Reg Tmp = F.newReg();
    Reg Prev = F.newReg(); // starts at 0; first-iteration prefetch is wild
                           // but non-faulting, as in Figure 3d before the
                           // explicit prev_P initialization
    Reg Stride = F.newReg();
    Reg Shifted = F.newReg();
    Reg PfAddr = F.newReg();

    Instruction Ea;
    Ea.Op = Opcode::Add;
    Ea.Dst = Tmp;
    Ea.A = Operand::reg(AddrReg);
    Ea.B = Operand::imm(LoadInst.Imm);
    Code.push_back(Ea);

    Instruction Sub;
    Sub.Op = Opcode::Sub;
    Sub.Dst = Stride;
    Sub.A = Operand::reg(Tmp);
    Sub.B = Operand::reg(Prev);
    Code.push_back(Sub);

    Instruction Sav;
    Sav.Op = Opcode::Mov;
    Sav.Dst = Prev;
    Sav.A = Operand::reg(Tmp);
    Code.push_back(Sav);

    Instruction Shl;
    Shl.Op = Opcode::Shl;
    Shl.Dst = Shifted;
    Shl.A = Operand::reg(Stride);
    Shl.B = Operand::imm(log2Exact(D.Distance));
    Code.push_back(Shl);

    Instruction AddPf;
    AddPf.Op = Opcode::Add;
    AddPf.Dst = PfAddr;
    AddPf.A = Operand::reg(Tmp);
    AddPf.B = Operand::reg(Shifted);
    Code.push_back(AddPf);

    Prefetch(PfAddr, 0, NoReg);
    ++Stats.PmstPrefetches;
    break;
  }
  case StrideClass::WSST: {
    // Like PMST steps 1-2, then a conditional constant-offset prefetch:
    //   p = (stride == S);  p ? prefetch (P + K*S)
    Reg Tmp = F.newReg();
    Reg Prev = F.newReg();
    Reg Stride = F.newReg();
    Reg Pred = F.newReg();

    Instruction Ea;
    Ea.Op = Opcode::Add;
    Ea.Dst = Tmp;
    Ea.A = Operand::reg(AddrReg);
    Ea.B = Operand::imm(LoadInst.Imm);
    Code.push_back(Ea);

    Instruction Sub;
    Sub.Op = Opcode::Sub;
    Sub.Dst = Stride;
    Sub.A = Operand::reg(Tmp);
    Sub.B = Operand::reg(Prev);
    Code.push_back(Sub);

    Instruction Sav;
    Sav.Op = Opcode::Mov;
    Sav.Dst = Prev;
    Sav.A = Operand::reg(Tmp);
    Code.push_back(Sav);

    Instruction Cmp;
    Cmp.Op = Opcode::CmpEq;
    Cmp.Dst = Pred;
    Cmp.A = Operand::reg(Stride);
    Cmp.B = Operand::imm(D.StrideValue);
    Code.push_back(Cmp);

    int64_t Ahead = static_cast<int64_t>(D.Distance) * D.StrideValue;
    Prefetch(Tmp, Ahead, Pred);
    ++Stats.WsstPrefetches;
    break;
  }
  case StrideClass::None:
    assert(false && "cannot insert a prefetch for an unclassified load");
    break;
  }
  Stats.InstructionsAdded += static_cast<unsigned>(Code.size());
  return Code;
}

} // namespace

namespace {

void flushObs(ObsSession *Obs, const PrefetchInsertionStats &Stats) {
  if (!Obs)
    return;
  Obs->counter("prefetch.ssst")->inc(Stats.SsstPrefetches);
  Obs->counter("prefetch.pmst")->inc(Stats.PmstPrefetches);
  Obs->counter("prefetch.wsst")->inc(Stats.WsstPrefetches);
  Obs->counter("prefetch.out_loop")->inc(Stats.OutLoopPrefetches);
  Obs->counter("prefetch.dependent")->inc(Stats.DependentPrefetches);
  Obs->counter("prefetch.instructions_added")->inc(Stats.InstructionsAdded);
}

} // namespace

PrefetchInsertionStats
sprof::insertPrefetches(Module &M, const FeedbackResult &Feedback,
                        ObsSession *Obs) {
  TraceSpan Span(Obs, "prefetch-insert", "prefetch", /*Level=*/1);
  PrefetchInsertionStats Stats = insertPrefetches(M, Feedback.Decisions);

  // Dependent prefetches are inserted in a second pass; site ids survive
  // the first pass's insertions, so re-locating is all that is needed.
  std::map<uint32_t, std::vector<const DependentPrefetchDecision *>> ByBase;
  for (const DependentPrefetchDecision &DD : Feedback.DependentDecisions)
    ByBase[DD.BaseSiteId].push_back(&DD);
  if (ByBase.empty()) {
    flushObs(Obs, Stats);
    return Stats;
  }

  std::vector<SiteLocation> Sites = M.locateLoadSites();
  // Process bases within one block from the highest instruction index down
  // so earlier insertions do not shift later targets.
  std::vector<std::pair<SiteLocation, uint32_t>> Order;
  for (const auto &[BaseSite, List] : ByBase) {
    (void)List;
    Order.emplace_back(Sites[BaseSite], BaseSite);
  }
  std::sort(Order.begin(), Order.end(),
            [](const auto &A, const auto &B) {
              // Ascending (Func, Block), then *descending* Inst: note the
              // swapped Inst operands.
              return std::tie(A.first.Func, A.first.Block, B.first.Inst) <
                     std::tie(B.first.Func, B.first.Block, A.first.Inst);
            });

  for (const auto &[Loc, BaseSite] : Order) {
    assert(Loc.isValid() && "dependent plan for a site with no load");
    Function &F = M.Functions[Loc.Func];
    BasicBlock &BB = F.Blocks[Loc.Block];
    const Instruction &Base = BB.Insts[Loc.Inst];
    assert(Base.Op == Opcode::Load && Base.SiteId == BaseSite &&
           "stale site location");

    std::vector<Instruction> Code;
    Reg Ahead = F.newReg();
    for (const DependentPrefetchDecision *DD : ByBase.at(BaseSite)) {
      if (Code.empty()) {
        // t = load.s [P + offA + K*S] -- the base pointer K strides ahead.
        Instruction Spec;
        Spec.Op = Opcode::SpecLoad;
        Spec.Dst = Ahead;
        Spec.A = Base.A;
        Spec.Imm = Base.Imm + static_cast<int64_t>(DD->Distance) *
                                  DD->BaseStride;
        Spec.SiteId = BaseSite;
        Code.push_back(Spec);
      }
      Instruction P;
      P.Op = Opcode::Prefetch;
      P.A = Operand::reg(Ahead);
      P.Imm = DD->DepOffset;
      P.SiteId = DD->DepSiteId;
      Code.push_back(P);
      ++Stats.DependentPrefetches;
    }
    Stats.InstructionsAdded += static_cast<unsigned>(Code.size());
    BB.Insts.insert(BB.Insts.begin() + Loc.Inst, Code.begin(), Code.end());
  }
  flushObs(Obs, Stats);
  return Stats;
}

PrefetchInsertionStats sprof::insertPrefetches(
    Module &M, const std::vector<PrefetchDecision> &Decisions) {
  PrefetchInsertionStats Stats;
  if (Decisions.empty())
    return Stats;

  std::map<uint32_t, const PrefetchDecision *> BySite;
  for (const PrefetchDecision &D : Decisions) {
    assert(!BySite.count(D.SiteId) && "duplicate decision for one site");
    BySite[D.SiteId] = &D;
  }

  std::vector<SiteLocation> Sites = M.locateLoadSites();

  // Group decisions per block so each block is rebuilt once.
  struct Planned {
    uint32_t InstIndex;
    const PrefetchDecision *Decision;
  };
  std::map<std::pair<uint32_t, uint32_t>, std::vector<Planned>> PerBlock;
  for (const auto &[SiteId, D] : BySite) {
    const SiteLocation &Loc = Sites[SiteId];
    assert(Loc.isValid() && "decision for a site that has no load");
    PerBlock[{Loc.Func, Loc.Block}].push_back(Planned{Loc.Inst, D});
  }

  for (auto &[FB, List] : PerBlock) {
    auto [FuncIdx, BlockIdx] = FB;
    Function &F = M.Functions[FuncIdx];
    BasicBlock &BB = F.Blocks[BlockIdx];
    std::sort(List.begin(), List.end(),
              [](const Planned &A, const Planned &B) {
                return A.InstIndex < B.InstIndex;
              });

    std::vector<Instruction> NewInsts;
    size_t Next = 0;
    for (uint32_t II = 0, IE = static_cast<uint32_t>(BB.Insts.size());
         II != IE; ++II) {
      while (Next < List.size() && List[Next].InstIndex == II) {
        std::vector<Instruction> Code =
            buildSequence(F, BB.Insts[II], *List[Next].Decision, Stats);
        NewInsts.insert(NewInsts.end(), Code.begin(), Code.end());
        ++Next;
      }
      NewInsts.push_back(BB.Insts[II]);
    }
    BB.Insts = std::move(NewInsts);
  }
  return Stats;
}
