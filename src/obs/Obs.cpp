//===- obs/Obs.cpp - Observability session lifecycle -----------------------===//
//
// Part of the StrideProf project (see Obs.h for the project reference).
//
//===----------------------------------------------------------------------===//

#include "obs/Obs.h"

#include "obs/Json.h"
#include "obs/Sampler.h"
#include "obs/SelfProfiler.h"

using namespace sprof;

ObsSession::ObsSession(ObsConfig InConfig) : Config(std::move(InConfig)) {
  if (Config.Enabled && Config.CollectMetrics &&
      Config.SampleIntervalUs > 0) {
    Sampler = std::make_unique<TelemetrySampler>(Registry, Trace,
                                                 Config.SampleIntervalUs,
                                                 Config.SampleRingCapacity);
    Sampler->start();
  }
  if (Config.Enabled && Config.SelfProfile)
    SelfProf =
        std::make_unique<EngineSelfProfiler>(Config.SelfProfileWindow);
}

ObsSession::~ObsSession() {
  if (Sampler)
    Sampler->stop();
}

void ObsSession::stopSampling() {
  if (Sampler)
    Sampler->stop();
}

bool ObsSession::writeArtifacts() {
  stopSampling();
  bool Ok = true;
  if (Sampler && !CounterSamplesFolded) {
    // Fold the ring into the trace as counter ("C") events so the
    // time-series renders alongside the phase spans in Perfetto.
    CounterSamplesFolded = true;
    for (const TimeSeriesSample &S : Sampler->samples()) {
      for (const auto &[Name, V] : S.Counters)
        Trace.appendCounterSample(Name, S.TsUs, static_cast<double>(V));
      for (const auto &[Name, V] : S.Gauges)
        Trace.appendCounterSample(Name, S.TsUs, V);
    }
  }
  if (Sampler && !Config.TimeSeriesOutputPath.empty())
    Ok &= writeJsonFile(Config.TimeSeriesOutputPath,
                        timeSeriesToJson(*Sampler));
  if (SelfProf && !Config.FoldedProfilePath.empty())
    Ok &= SelfProf->writeFoldedFile(Config.FoldedProfilePath);
  if (!Config.TraceOutputPath.empty())
    Ok &= Trace.writeChromeTraceFile(Config.TraceOutputPath);
  return Ok;
}
