//===- obs/SelfProfiler.h - Sampled engine self-attribution -----*- C++ -*-===//
//
// Part of the StrideProf project, a reproduction of Youfeng Wu, "Efficient
// Discovery of Regular Stride Patterns in Irregular Programs and Its Use in
// Compiler Prefetching" (PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Where does *our own* engine spend its host cycles? EngineSelfProfiler
/// answers that with window sampling: the decoded interpreter pings it once
/// every Window dispatches with the dispatch-op slot about to execute, and
/// the profiler attributes the wall time since the previous ping to that
/// slot. With a window of ~1k the dispatch-loop overhead is one predictable
/// decrement-and-branch per instruction, and the sample *counts* are a
/// deterministic function of the instruction stream (every Window-th
/// dispatch), so tests can assert on them exactly; the nanosecond totals
/// are host-noisy and reported for ranking only.
///
/// Samples accumulate per (workload, phase) context -- the pipeline labels
/// its profile/baseline/timed runs -- and per slot, where a slot is one
/// dispatch op of the decoded engine (a base opcode or a fused
/// superinstruction). The engine installs its slot-name table at attach
/// time, which keeps this class free of interpreter dependencies.
///
/// Export: writeFolded emits one `workload;phase;op count` line per nonzero
/// slot -- the folded-stack format flamegraph.pl and speedscope consume --
/// and the run report gains a "self_profile" section with the same data
/// plus nanosecond estimates.
///
//===----------------------------------------------------------------------===//

#ifndef SPROF_OBS_SELFPROFILER_H
#define SPROF_OBS_SELFPROFILER_H

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace sprof {

/// Window-sampled per-slot attribution, bucketed by (workload, phase).
class EngineSelfProfiler {
public:
  /// \p Window is the sampling period in dispatches (minimum 1).
  explicit EngineSelfProfiler(uint32_t Window);

  uint32_t window() const { return Window; }

  /// Installs the engine's slot-name table and slot count. Idempotent;
  /// existing buckets are resized. \p Names may be nullptr (slots render
  /// as "op<N>"). The table must outlive the profiler.
  void configureSlots(uint32_t NumSlots, const char *const *Names);

  /// Selects (creating on first use) the accumulation bucket for
  /// subsequent samples and re-anchors the attribution clock.
  void setContext(std::string_view Workload, std::string_view Phase);

  /// Records one sample: attributes the wall time since the previous
  /// sample (or beginWindow) in the current context to \p Slot. Called by
  /// the engine once every Window dispatches, never per instruction.
  void sample(uint32_t Slot);

  /// Re-anchors the attribution clock without recording; the engine calls
  /// this at run start so setup time is not charged to the first sample.
  void beginWindow();

  /// One nonzero (workload, phase, slot) cell.
  struct Entry {
    std::string Workload;
    std::string Phase;
    uint32_t Slot = 0;
    uint64_t Samples = 0; ///< deterministic given the instruction stream
    uint64_t Ns = 0;      ///< host wall time attributed (noisy)
  };

  /// Every nonzero cell, sorted by Samples descending (ties: workload,
  /// phase, slot ascending, so the order is total and deterministic).
  std::vector<Entry> entries() const;

  uint64_t totalSamples() const;

  /// The installed name for \p Slot, or "op<N>" when no table is set.
  std::string slotName(uint32_t Slot) const;

  /// Accumulates \p Other's buckets into this profiler (sample counts and
  /// ns add; commutative). Adopts \p Other's slot table when this profiler
  /// has none. Used by the engine to fold job-scoped profilers into the
  /// session profiler.
  void merge(const EngineSelfProfiler &Other);

  /// Folded-stack lines "workload;phase;op count", one per nonzero cell,
  /// in deterministic (workload, phase, slot) order. Values are sample
  /// counts.
  void writeFolded(std::ostream &OS) const;
  bool writeFoldedFile(const std::string &Path) const;

private:
  struct SlotStat {
    uint64_t Samples = 0;
    uint64_t Ns = 0;
  };

  std::vector<SlotStat> &bucketFor(const std::string &Key);

  uint32_t Window;
  uint32_t NumSlots = 0;
  const char *const *SlotNames = nullptr;

  /// Key "workload;phase" -> per-slot stats (size NumSlots).
  std::map<std::string, std::vector<SlotStat>> Buckets;
  std::vector<SlotStat> *Cur = nullptr;
  uint64_t LastNs = 0;
};

} // namespace sprof

#endif // SPROF_OBS_SELFPROFILER_H
