//===- obs/FlightRecorder.cpp - Crash/hang post-mortem ring ----------------===//
//
// Part of the StrideProf project (see FlightRecorder.h for the project
// reference).
//
//===----------------------------------------------------------------------===//

#include "obs/FlightRecorder.h"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

using namespace sprof;

const char *sprof::flightEventKindName(FlightEventKind Kind) {
  switch (Kind) {
  case FlightEventKind::JobStart:
    return "job-start";
  case FlightEventKind::JobFinish:
    return "job-finish";
  case FlightEventKind::JobFail:
    return "job-fail";
  case FlightEventKind::Phase:
    return "phase";
  case FlightEventKind::Mark:
    return "mark";
  }
  return "unknown";
}

namespace {

thread_local FlightRecorder *BoundRecorder = nullptr;
thread_local uint32_t BoundWorker = 0;

/// The recorder the fatal-signal handler dumps; armed by
/// installSignalDump, cleared by the owning recorder's destructor.
std::atomic<FlightRecorder *> SignalRecorder{nullptr};
std::atomic<bool> HandlersInstalled{false};

uint64_t monotonicNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void copyStr(char *Dst, size_t Cap, const char *Src) {
  size_t N = 0;
  if (Src)
    for (; Src[N] && N + 1 < Cap; ++N)
      Dst[N] = Src[N];
  Dst[N] = '\0';
}

/// Buffered fd writer; every call is async-signal-safe (write(2) only).
struct FdWriter {
  int Fd;
  char Buf[1024];
  size_t Len = 0;
  bool Ok = true;

  explicit FdWriter(int Fd) : Fd(Fd) {}

  void flush() {
    size_t Off = 0;
    while (Off < Len) {
      ssize_t N = ::write(Fd, Buf + Off, Len - Off);
      if (N < 0 && errno == EINTR)
        continue;
      if (N <= 0) {
        Ok = false;
        break;
      }
      Off += static_cast<size_t>(N);
    }
    Len = 0;
  }
  void put(char C) {
    if (Len == sizeof(Buf))
      flush();
    Buf[Len++] = C;
  }
  void raw(const char *S) {
    for (; *S; ++S)
      put(*S);
  }
  void num(uint64_t V) {
    char Tmp[20];
    size_t N = 0;
    do {
      Tmp[N++] = static_cast<char>('0' + V % 10);
      V /= 10;
    } while (V != 0);
    while (N != 0)
      put(Tmp[--N]);
  }
  /// JSON string literal; control characters degrade to '?' instead of
  /// growing a \uXXXX encoder the dump path doesn't need.
  void str(const char *S) {
    put('"');
    for (; *S; ++S) {
      unsigned char C = static_cast<unsigned char>(*S);
      if (C == '"' || C == '\\') {
        put('\\');
        put(static_cast<char>(C));
      } else if (C < 0x20) {
        put('?');
      } else {
        put(static_cast<char>(C));
      }
    }
    put('"');
  }
};

void fatalSignalHandler(int Sig) {
  FlightRecorder *R = SignalRecorder.load(std::memory_order_acquire);
  if (R) {
    const char *Reason = Sig == SIGSEGV   ? "signal:SIGSEGV"
                         : Sig == SIGABRT ? "signal:SIGABRT"
                                          : "signal";
    R->dumpFile(nullptr, Reason); // nullptr: the recorder's armed path
  }
  // Restore the default disposition and re-raise so the process still
  // dies with the original signal (core dumps, wait status intact).
  signal(Sig, SIG_DFL);
  raise(Sig);
}

} // namespace

FlightRecorder::FlightRecorder(unsigned Workers, size_t RingSize)
    : EpochNs(monotonicNowNs()) {
  size_t Cap = 8;
  while (Cap < RingSize)
    Cap <<= 1;
  RingMask = Cap - 1;
  Lanes = std::vector<Lane>(Workers == 0 ? 1 : Workers);
  for (Lane &L : Lanes)
    L.Ring = std::vector<Slot>(Cap);
}

FlightRecorder::~FlightRecorder() {
  stopWatchdog();
  FlightRecorder *Self = this;
  SignalRecorder.compare_exchange_strong(Self, nullptr,
                                         std::memory_order_acq_rel);
}

uint64_t FlightRecorder::nowUs() const {
  return (monotonicNowNs() - EpochNs) / 1000;
}

void FlightRecorder::bindThread(uint32_t Worker) {
  BoundRecorder = this;
  BoundWorker = Worker < workers() ? Worker : 0;
}

void FlightRecorder::unbindThread() { BoundRecorder = nullptr; }

void FlightRecorder::notePhase(const char *Name) {
  if (FlightRecorder *R = BoundRecorder)
    R->record(BoundWorker, FlightEventKind::Phase, Name, "", true);
}

void FlightRecorder::notePhase(std::string_view Name) {
  FlightRecorder *R = BoundRecorder;
  if (!R)
    return; // the common case: unarmed sweeps pay one TL load + branch
  char Buf[NameCap];
  size_t N = Name.size() < NameCap - 1 ? Name.size() : NameCap - 1;
  for (size_t I = 0; I != N; ++I)
    Buf[I] = Name[I];
  Buf[N] = '\0';
  R->record(BoundWorker, FlightEventKind::Phase, Buf, "", true);
}

void FlightRecorder::jobStart(uint32_t Worker, const char *Name,
                              const char *Detail) {
  if (Worker >= workers())
    Worker = 0;
  Lane &L = Lanes[Worker];
  // CurrentJob gets the same odd/even guard as a ring slot so the dump
  // never reads a half-copied name.
  uint64_t Seq = L.JobSeq.load(std::memory_order_relaxed);
  L.JobSeq.store(Seq + 1, std::memory_order_release);
  copyStr(L.CurrentJob, NameCap, Name);
  L.JobSeq.store(Seq + 2, std::memory_order_release);
  L.InFlight.store(true, std::memory_order_release);
  record(Worker, FlightEventKind::JobStart, Name, Detail, true);
}

void FlightRecorder::jobFinish(uint32_t Worker, const char *Name, bool Ok) {
  if (Worker >= workers())
    Worker = 0;
  record(Worker, Ok ? FlightEventKind::JobFinish : FlightEventKind::JobFail,
         Name, "", Ok);
  Lanes[Worker].InFlight.store(false, std::memory_order_release);
  heartbeat();
}

void FlightRecorder::mark(uint32_t Worker, const char *Name,
                          const char *Detail) {
  record(Worker < workers() ? Worker : 0, FlightEventKind::Mark, Name,
         Detail, true);
}

void FlightRecorder::record(uint32_t Worker, FlightEventKind Kind,
                            const char *Name, const char *Detail, bool Ok) {
  Lane &L = Lanes[Worker];
  uint64_t Idx = L.Head.load(std::memory_order_relaxed);
  Slot &S = L.Ring[Idx & RingMask];
  // Seqlock write: 2*Idx+1 while mid-write, 2*Idx+2 when stable. Tying
  // the sequence to the event index lets readers reject slots that a
  // lapped writer has already reused for a newer event.
  S.Seq.store(2 * Idx + 1, std::memory_order_release);
  S.TsUs = nowUs();
  S.Kind = Kind;
  S.Ok = Ok;
  copyStr(S.Name, NameCap, Name);
  copyStr(S.Detail, DetailCap, Detail);
  S.Seq.store(2 * Idx + 2, std::memory_order_release);
  L.Head.store(Idx + 1, std::memory_order_release);
}

bool FlightRecorder::dumpFd(int Fd, const char *Reason) const {
  FdWriter W(Fd);
  W.raw("{\"schema\":");
  W.str(FlightRecSchemaV1);
  W.raw(",\"reason\":");
  W.str(Reason ? Reason : "request");
  W.raw(",\"wall_us\":");
  W.num(nowUs());
  W.raw(",\"workers\":[");
  for (size_t LI = 0; LI != Lanes.size(); ++LI) {
    const Lane &L = Lanes[LI];
    if (LI != 0)
      W.put(',');
    W.raw("{\"worker\":");
    W.num(LI);
    W.raw(",\"in_flight\":");
    W.raw(L.InFlight.load(std::memory_order_acquire) ? "true" : "false");
    char Job[NameCap];
    uint64_t S1 = L.JobSeq.load(std::memory_order_acquire);
    for (size_t N = 0; N != NameCap; ++N)
      Job[N] = L.CurrentJob[N];
    Job[NameCap - 1] = '\0';
    if ((S1 & 1) != 0 || L.JobSeq.load(std::memory_order_acquire) != S1)
      Job[0] = '\0'; // torn copy; drop rather than mislead
    W.raw(",\"current_job\":");
    W.str(Job);
    W.raw(",\"events\":[");
    uint64_t Head = L.Head.load(std::memory_order_acquire);
    uint64_t Count = Head < L.Ring.size() ? Head : L.Ring.size();
    bool First = true;
    for (uint64_t Idx = Head - Count; Idx != Head; ++Idx) {
      const Slot &S = L.Ring[Idx & RingMask];
      uint64_t Want = 2 * Idx + 2;
      if (S.Seq.load(std::memory_order_acquire) != Want)
        continue; // mid-write or already lapped
      uint64_t TsUs = S.TsUs;
      FlightEventKind Kind = S.Kind;
      bool Ok = S.Ok;
      char Name[NameCap], Detail[DetailCap];
      for (size_t N = 0; N != NameCap; ++N)
        Name[N] = S.Name[N];
      for (size_t N = 0; N != DetailCap; ++N)
        Detail[N] = S.Detail[N];
      Name[NameCap - 1] = '\0';
      Detail[DetailCap - 1] = '\0';
      if (S.Seq.load(std::memory_order_acquire) != Want)
        continue; // changed under us
      if (!First)
        W.put(',');
      First = false;
      W.raw("{\"ts_us\":");
      W.num(TsUs);
      W.raw(",\"kind\":");
      W.str(flightEventKindName(Kind));
      W.raw(",\"name\":");
      W.str(Name);
      if (Detail[0] != '\0') {
        W.raw(",\"detail\":");
        W.str(Detail);
      }
      W.raw(",\"ok\":");
      W.raw(Ok ? "true" : "false");
      W.put('}');
    }
    W.raw("]}");
  }
  W.raw("]}\n");
  W.flush();
  return W.Ok;
}

bool FlightRecorder::dumpFile(const char *Path, const char *Reason) const {
  if (Path == nullptr)
    Path = SignalDumpPath; // armed path; may itself be empty
  if (Path[0] == '\0')
    return dumpFd(STDERR_FILENO, Reason);
  int Fd = ::open(Path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0)
    return dumpFd(STDERR_FILENO, Reason);
  bool Ok = dumpFd(Fd, Reason);
  ::close(Fd);
  return Ok;
}

void FlightRecorder::installSignalDump(const std::string &Path) {
  copyStr(SignalDumpPath, sizeof(SignalDumpPath), Path.c_str());
  SignalRecorder.store(this, std::memory_order_release);
  if (!HandlersInstalled.exchange(true)) {
    struct sigaction SA;
    std::memset(&SA, 0, sizeof(SA));
    SA.sa_handler = fatalSignalHandler;
    sigemptyset(&SA.sa_mask);
    SA.sa_flags = SA_NODEFER; // re-raise from the handler must deliver
    sigaction(SIGSEGV, &SA, nullptr);
    sigaction(SIGABRT, &SA, nullptr);
  }
}

void FlightRecorder::heartbeat() {
  LastFinishUs.store(nowUs(), std::memory_order_release);
}

void FlightRecorder::startWatchdog(uint64_t TimeoutSec,
                                   const std::string &Path) {
  stopWatchdog();
  {
    std::lock_guard<std::mutex> Lock(WatchdogMu);
    WatchdogStop = false;
  }
  heartbeat(); // the countdown starts now, not at the last real finish
  Watchdog = std::thread([this, TimeoutSec, Path] {
    const uint64_t TimeoutUs = TimeoutSec * 1000000;
    std::unique_lock<std::mutex> Lock(WatchdogMu);
    while (!WatchdogStop) {
      WatchdogCv.wait_for(Lock, std::chrono::milliseconds(100));
      if (WatchdogStop)
        return;
      bool AnyInFlight = false;
      for (const Lane &L : Lanes)
        AnyInFlight |= L.InFlight.load(std::memory_order_acquire);
      uint64_t Last = LastFinishUs.load(std::memory_order_acquire);
      if (AnyInFlight && nowUs() - Last > TimeoutUs) {
        // The sweep wedged: leave the post-mortem and kill the process
        // (exiting is the point — a hung 30-minute sweep should fail
        // loudly in CI, not sit until the job times out).
        dumpFile(Path.empty() ? nullptr : Path.c_str(), "watchdog");
        _exit(WatchdogExitCode);
      }
    }
  });
}

void FlightRecorder::stopWatchdog() {
  {
    std::lock_guard<std::mutex> Lock(WatchdogMu);
    WatchdogStop = true;
  }
  WatchdogCv.notify_all();
  if (Watchdog.joinable())
    Watchdog.join();
}
