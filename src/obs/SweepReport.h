//===- obs/SweepReport.h - Causal sweep analysis & report -------*- C++ -*-===//
//
// Part of the StrideProf project, a reproduction of Youfeng Wu, "Efficient
// Discovery of Regular Stride Patterns in Irregular Programs and Its Use in
// Compiler Prefetching" (PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Post-sweep causal analysis over the experiment engine's job records:
/// the dependency-weighted critical path (the chain of jobs whose combined
/// run time bounds the sweep's wall clock from below), per-worker
/// utilization, and the straggler top-N — serialized as the versioned
/// "sprof.sweep_report/1" artifact. The analysis is pure: it consumes the
/// JobRecords an ObsSession accumulated plus the scheduler's accounting
/// and touches nothing else, so it is deterministic in everything but the
/// timestamps.
///
/// Document shape:
///
///   {"schema": "sprof.sweep_report/1", "threads": N, "wall_us": W,
///    "jobs": [{"id", "name", "category", "deps", "worker", "ready_us",
///              "start_us", "finish_us", "queue_wait_us", "run_us",
///              "ok"}, ...],
///    "critical_path": {"jobs": [ids...], "duration_us", "wall_us",
///                      "fraction"},
///    "scheduler": {"queue_depth_high_water", "wakeup_retries",
///                  "jobs_enqueued", "jobs_started", "jobs_finished",
///                  "jobs_failed", "jobs_skipped",
///                  "workers": [{"worker", "jobs", "busy_us",
///                               "utilization"}, ...],
///                  "stragglers": [{"id", "name", "run_us",
///                                  "queue_wait_us"}, ...]}}
///
/// Invariants a validator can hold: critical_path.duration_us ==
/// sum(run_us over critical_path.jobs) <= wall_us; every deps entry names
/// an earlier job id; jobs_enqueued == jobs array length.
///
//===----------------------------------------------------------------------===//

#ifndef SPROF_OBS_SWEEPREPORT_H
#define SPROF_OBS_SWEEPREPORT_H

#include "obs/Json.h"
#include "obs/Obs.h"

#include <cstdint>
#include <vector>

namespace sprof {

/// Schema identifier stamped into every sweep report.
inline constexpr const char *SweepReportSchemaV1 = "sprof.sweep_report/1";

/// Scheduler accounting carried from JobGraph into the sweep report
/// (accumulated across the engine's graph drains within one session).
struct SweepSchedulerStats {
  uint64_t QueueDepthHighWater = 0; ///< max over drains
  uint64_t WakeupRetries = 0;       ///< sum over drains
  uint64_t JobsSkipped = 0;         ///< jobs skipped on a failed dependency
};

/// The computed critical path: job ids in execution order, and the sum of
/// their run times.
struct CriticalPath {
  std::vector<size_t> Jobs;
  uint64_t DurationUs = 0;
};

/// Longest dependency-weighted run-time chain through \p Jobs. Deps must
/// reference earlier ids (the engine's job records satisfy this by
/// construction). Skipped jobs contribute zero weight, so the path
/// reflects work actually executed. Ties break toward the smaller job id,
/// keeping the result deterministic for identical durations.
CriticalPath computeCriticalPath(const std::vector<JobRecord> &Jobs);

/// Assembles the full "sprof.sweep_report/1" document. \p WallUs is the
/// sweep's wall clock (max finish - min ready over the jobs when zero is
/// passed); \p TopN bounds the straggler list.
JsonValue buildSweepReport(const std::vector<JobRecord> &Jobs,
                           unsigned Threads,
                           const SweepSchedulerStats &Sched,
                           uint64_t WallUs = 0, size_t TopN = 5);

} // namespace sprof

#endif // SPROF_OBS_SWEEPREPORT_H
