//===- obs/SelfProfiler.cpp - Sampled engine self-attribution --------------===//
//
// Part of the StrideProf project (see SelfProfiler.h for the project
// reference).
//
//===----------------------------------------------------------------------===//

#include "obs/SelfProfiler.h"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <ostream>

using namespace sprof;

static uint64_t hostNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

EngineSelfProfiler::EngineSelfProfiler(uint32_t Window)
    : Window(Window == 0 ? 1 : Window) {}

void EngineSelfProfiler::configureSlots(uint32_t NewNumSlots,
                                        const char *const *Names) {
  if (NewNumSlots > NumSlots) {
    NumSlots = NewNumSlots;
    for (auto &[Key, Stats] : Buckets)
      Stats.resize(NumSlots);
  }
  if (Names)
    SlotNames = Names;
}

std::vector<EngineSelfProfiler::SlotStat> &
EngineSelfProfiler::bucketFor(const std::string &Key) {
  auto It = Buckets.find(Key);
  if (It == Buckets.end())
    It = Buckets.emplace(Key, std::vector<SlotStat>(NumSlots)).first;
  return It->second;
}

void EngineSelfProfiler::setContext(std::string_view Workload,
                                    std::string_view Phase) {
  std::string Key;
  Key.reserve(Workload.size() + 1 + Phase.size());
  Key.append(Workload);
  Key.push_back(';');
  Key.append(Phase);
  Cur = &bucketFor(Key);
  LastNs = hostNowNs();
}

void EngineSelfProfiler::beginWindow() { LastNs = hostNowNs(); }

void EngineSelfProfiler::sample(uint32_t Slot) {
  if (!Cur)
    setContext("unknown", "run");
  if (Slot >= Cur->size())
    Cur->resize(Slot + 1);
  uint64_t Now = hostNowNs();
  SlotStat &S = (*Cur)[Slot];
  ++S.Samples;
  S.Ns += Now - LastNs;
  LastNs = Now;
}

std::vector<EngineSelfProfiler::Entry> EngineSelfProfiler::entries() const {
  std::vector<Entry> Out;
  for (const auto &[Key, Stats] : Buckets) {
    size_t Semi = Key.find(';');
    std::string Workload = Key.substr(0, Semi);
    std::string Phase = Semi == std::string::npos ? "" : Key.substr(Semi + 1);
    for (uint32_t Slot = 0; Slot != Stats.size(); ++Slot) {
      if (Stats[Slot].Samples == 0)
        continue;
      Entry E;
      E.Workload = Workload;
      E.Phase = Phase;
      E.Slot = Slot;
      E.Samples = Stats[Slot].Samples;
      E.Ns = Stats[Slot].Ns;
      Out.push_back(std::move(E));
    }
  }
  std::sort(Out.begin(), Out.end(), [](const Entry &A, const Entry &B) {
    if (A.Samples != B.Samples)
      return A.Samples > B.Samples;
    if (A.Workload != B.Workload)
      return A.Workload < B.Workload;
    if (A.Phase != B.Phase)
      return A.Phase < B.Phase;
    return A.Slot < B.Slot;
  });
  return Out;
}

uint64_t EngineSelfProfiler::totalSamples() const {
  uint64_t Total = 0;
  for (const auto &[Key, Stats] : Buckets)
    for (const SlotStat &S : Stats)
      Total += S.Samples;
  return Total;
}

std::string EngineSelfProfiler::slotName(uint32_t Slot) const {
  if (SlotNames && Slot < NumSlots && SlotNames[Slot])
    return SlotNames[Slot];
  return "op" + std::to_string(Slot);
}

void EngineSelfProfiler::merge(const EngineSelfProfiler &Other) {
  configureSlots(Other.NumSlots, Other.SlotNames);
  for (const auto &[Key, Stats] : Other.Buckets) {
    auto &Mine = bucketFor(Key);
    if (Mine.size() < Stats.size())
      Mine.resize(Stats.size());
    for (size_t I = 0; I != Stats.size(); ++I) {
      Mine[I].Samples += Stats[I].Samples;
      Mine[I].Ns += Stats[I].Ns;
    }
  }
}

void EngineSelfProfiler::writeFolded(std::ostream &OS) const {
  // Buckets iterate sorted by key and slots ascend, so the output order is
  // deterministic run to run.
  for (const auto &[Key, Stats] : Buckets)
    for (uint32_t Slot = 0; Slot != Stats.size(); ++Slot)
      if (Stats[Slot].Samples != 0)
        OS << Key << ';' << slotName(Slot) << ' ' << Stats[Slot].Samples
           << '\n';
}

bool EngineSelfProfiler::writeFoldedFile(const std::string &Path) const {
  std::ofstream OS(Path);
  if (!OS)
    return false;
  writeFolded(OS);
  return OS.good();
}
