//===- obs/Report.cpp - Machine-readable run reports -----------------------===//
//
// Part of the StrideProf project (see Report.h for the project reference).
//
//===----------------------------------------------------------------------===//

#include "obs/Report.h"

#include "obs/SelfProfiler.h"

#include <ostream>

using namespace sprof;

JsonValue sprof::runStatsToJson(const RunStats &Stats) {
  JsonValue J = JsonValue::object();
  J.set("completed", Stats.Completed);
  J.set("instructions", Stats.Instructions);
  J.set("cycles", Stats.Cycles);
  J.set("base_cycles", Stats.BaseCycles);
  J.set("mem_stall_cycles", Stats.MemStallCycles);
  J.set("instrumentation_cycles", Stats.InstrumentationCycles);
  J.set("runtime_cycles", Stats.RuntimeCycles);
  J.set("load_refs", Stats.LoadRefs);
  J.set("exit_value", Stats.ExitValue);
  J.set("memory", memoryStatsToJson(Stats.Mem));
  return J;
}

JsonValue sprof::memoryStatsToJson(const MemoryStats &Stats) {
  JsonValue J = JsonValue::object();
  JsonValue Levels = JsonValue::array();
  for (const MemoryStats::LevelStats &L : Stats.Levels) {
    JsonValue LJ = JsonValue::object();
    LJ.set("hits", L.Hits);
    LJ.set("misses", L.Misses);
    Levels.push(std::move(LJ));
  }
  J.set("levels", std::move(Levels));
  J.set("demand_accesses", Stats.DemandAccesses);
  J.set("prefetches_issued", Stats.PrefetchesIssued);
  J.set("prefetches_redundant", Stats.PrefetchesRedundant);
  J.set("late_prefetch_hits", Stats.LatePrefetchHits);
  J.set("prefetches_useful", Stats.PrefetchesUseful);
  J.set("prefetches_unused", Stats.PrefetchesUnused);
  J.set("stall_cycles", Stats.StallCycles);
  return J;
}

JsonValue sprof::edgeProfileToJson(const EdgeProfile &EP) {
  JsonValue J = JsonValue::object();
  J.set("functions", static_cast<uint64_t>(EP.numFunctions()));
  uint64_t Edges = 0, TotalCount = 0, EntryTotal = 0;
  JsonValue PerFunction = JsonValue::array();
  for (uint32_t F = 0; F != EP.numFunctions(); ++F) {
    uint64_t FuncCount = 0;
    for (const auto &[E, Count] : EP.functionEdges(F)) {
      ++Edges;
      FuncCount += Count;
    }
    TotalCount += FuncCount;
    EntryTotal += EP.entryCount(F);
    JsonValue FJ = JsonValue::object();
    FJ.set("entry_count", EP.entryCount(F));
    FJ.set("edges", static_cast<uint64_t>(EP.functionEdges(F).size()));
    FJ.set("edge_events", FuncCount);
    PerFunction.push(std::move(FJ));
  }
  J.set("edges", Edges);
  J.set("edge_events", TotalCount);
  J.set("entry_events", EntryTotal);
  J.set("per_function", std::move(PerFunction));
  return J;
}

JsonValue sprof::strideProfileToJson(const StrideProfile &SP,
                                     const ReportOptions &Options) {
  JsonValue J = JsonValue::object();
  J.set("num_sites", SP.numSites());
  JsonValue Sites = JsonValue::array();
  for (uint32_t S = 0; S != SP.numSites(); ++S) {
    const StrideSiteSummary &Sum = SP.site(S);
    if (Options.OnlyActiveSites && Sum.TotalStrides == 0)
      continue;
    JsonValue SJ = JsonValue::object();
    SJ.set("site", S);
    SJ.set("total_strides", Sum.TotalStrides);
    SJ.set("zero_strides", Sum.NumZeroStride);
    SJ.set("zero_diffs", Sum.NumZeroDiff);
    SJ.set("top1_freq", Sum.top1Freq());
    SJ.set("top4_freq", Sum.top4Freq());
    SJ.set("avg_ref_gap", Sum.avgRefGap());
    JsonValue Top = JsonValue::array();
    for (size_t T = 0; T != Sum.TopStrides.size() &&
                       T != Options.TopStridesPerSite;
         ++T) {
      JsonValue TJ = JsonValue::object();
      TJ.set("stride", Sum.TopStrides[T].Value);
      TJ.set("count", Sum.TopStrides[T].Count);
      Top.push(std::move(TJ));
    }
    SJ.set("top_strides", std::move(Top));
    Sites.push(std::move(SJ));
  }
  J.set("sites", std::move(Sites));
  return J;
}

JsonValue sprof::prefetchStatsToJson(const PrefetchInsertionStats &Stats) {
  JsonValue J = JsonValue::object();
  J.set("ssst", Stats.SsstPrefetches);
  J.set("pmst", Stats.PmstPrefetches);
  J.set("wsst", Stats.WsstPrefetches);
  J.set("out_loop", Stats.OutLoopPrefetches);
  J.set("dependent", Stats.DependentPrefetches);
  J.set("instructions_added", Stats.InstructionsAdded);
  return J;
}

JsonValue sprof::feedbackToJson(const FeedbackResult &FB,
                                const StrideProfile &SP,
                                const ClassifierConfig &Config) {
  JsonValue J = JsonValue::object();

  JsonValue Thresholds = JsonValue::object();
  Thresholds.set("frequency", Config.FrequencyThreshold);
  Thresholds.set("trip_count", Config.TripCountThreshold);
  Thresholds.set("ssst_top1", Config.SsstThreshold);
  Thresholds.set("pmst_top4", Config.PmstThreshold);
  Thresholds.set("pmst_zero_diff", Config.PmstDiffThreshold);
  Thresholds.set("wsst_top1", Config.WsstThreshold);
  Thresholds.set("wsst_zero_diff", Config.WsstDiffThreshold);
  J.set("thresholds", std::move(Thresholds));

  uint64_t ByClass[4] = {0, 0, 0, 0};
  JsonValue Verdicts = JsonValue::array();
  for (uint32_t S = 0; S != FB.SiteClass.size(); ++S) {
    StrideClass C = FB.SiteClass[S];
    ++ByClass[static_cast<unsigned>(C)];
    if (C == StrideClass::None)
      continue;
    static const StrideSiteSummary Empty;
    const StrideSiteSummary &Sum = S < SP.numSites() ? SP.site(S) : Empty;
    JsonValue V = JsonValue::object();
    V.set("site", S);
    V.set("class", strideClassName(C));
    V.set("in_loop", S < FB.SiteInLoop.size() && FB.SiteInLoop[S]);
    V.set("trip_count",
          S < FB.SiteTripCount.size() ? FB.SiteTripCount[S] : 0.0);
    // The ratios the Figure-5 thresholds were compared against.
    double Total = static_cast<double>(Sum.TotalStrides);
    V.set("top1_ratio", Total ? static_cast<double>(Sum.top1Freq()) / Total
                              : 0.0);
    V.set("top4_ratio", Total ? static_cast<double>(Sum.top4Freq()) / Total
                              : 0.0);
    V.set("zero_diff_ratio",
          Total ? static_cast<double>(Sum.NumZeroDiff) / Total : 0.0);
    Verdicts.push(std::move(V));
  }
  JsonValue Counts = JsonValue::object();
  Counts.set("none", ByClass[0]);
  Counts.set("ssst", ByClass[1]);
  Counts.set("pmst", ByClass[2]);
  Counts.set("wsst", ByClass[3]);
  J.set("class_counts", std::move(Counts));
  J.set("verdicts", std::move(Verdicts));

  JsonValue Decisions = JsonValue::array();
  for (const PrefetchDecision &D : FB.Decisions) {
    JsonValue DJ = JsonValue::object();
    DJ.set("site", D.SiteId);
    DJ.set("class", strideClassName(D.Kind));
    DJ.set("in_loop", D.InLoop);
    DJ.set("stride", D.StrideValue);
    DJ.set("distance", D.Distance);
    Decisions.push(std::move(DJ));
  }
  J.set("decisions", std::move(Decisions));
  J.set("dependent_decisions",
        static_cast<uint64_t>(FB.DependentDecisions.size()));
  return J;
}

JsonValue sprof::pipelineConfigToJson(const PipelineConfig &Config) {
  JsonValue J = JsonValue::object();

  JsonValue Instr = JsonValue::object();
  Instr.set("trip_count_threshold", Config.Instrument.TripCountThreshold);
  J.set("instrument", std::move(Instr));

  const StrideProfilerConfig &PC = Config.Profiler;
  JsonValue Prof = JsonValue::object();
  JsonValue Sampling = JsonValue::object();
  Sampling.set("enabled", PC.Sampling.Enabled);
  Sampling.set("fine_interval", PC.Sampling.FineInterval);
  Sampling.set("chunk_skip", PC.Sampling.ChunkSkip);
  Sampling.set("chunk_profile", PC.Sampling.ChunkProfile);
  Prof.set("sampling", std::move(Sampling));
  JsonValue Lfu = JsonValue::object();
  Lfu.set("temp_size", PC.Lfu.TempSize);
  Lfu.set("final_size", PC.Lfu.FinalSize);
  Lfu.set("merge_interval", PC.Lfu.MergeInterval);
  Lfu.set("coarsen_shift", PC.Lfu.CoarsenShift);
  Prof.set("lfu", std::move(Lfu));
  Prof.set("addr_coarsen_shift", PC.AddrCoarsenShift);
  J.set("profiler", std::move(Prof));

  const ClassifierConfig &CC = Config.Classifier;
  JsonValue Cls = JsonValue::object();
  Cls.set("frequency_threshold", CC.FrequencyThreshold);
  Cls.set("trip_count_threshold", CC.TripCountThreshold);
  Cls.set("ssst_threshold", CC.SsstThreshold);
  Cls.set("pmst_threshold", CC.PmstThreshold);
  Cls.set("pmst_diff_threshold", CC.PmstDiffThreshold);
  Cls.set("wsst_threshold", CC.WsstThreshold);
  Cls.set("wsst_diff_threshold", CC.WsstDiffThreshold);
  Cls.set("max_prefetch_distance", CC.MaxPrefetchDistance);
  Cls.set("out_loop_prefetch_distance", CC.OutLoopPrefetchDistance);
  Cls.set("enable_wsst_prefetch", CC.EnableWsstPrefetch);
  Cls.set("enable_out_loop_prefetch", CC.EnableOutLoopPrefetch);
  Cls.set("enable_use_distance_filter", CC.EnableUseDistanceFilter);
  Cls.set("enable_dependent_prefetch", CC.EnableDependentPrefetch);
  J.set("classifier", std::move(Cls));

  JsonValue Obs = JsonValue::object();
  Obs.set("enabled", Config.Obs.Enabled);
  Obs.set("collect_metrics", Config.Obs.CollectMetrics);
  Obs.set("collect_trace", Config.Obs.CollectTrace);
  Obs.set("trace_detail", Config.Obs.TraceDetail);
  Obs.set("sample_interval_us", Config.Obs.SampleIntervalUs);
  Obs.set("sample_ring_capacity",
          static_cast<uint64_t>(Config.Obs.SampleRingCapacity));
  Obs.set("self_profile", Config.Obs.SelfProfile);
  Obs.set("self_profile_window", Config.Obs.SelfProfileWindow);
  J.set("obs", std::move(Obs));
  return J;
}

namespace {

void setOutcomeFields(JsonValue &J, const PrefetchOutcomeCounts &O) {
  J.set("useful", O.Useful);
  J.set("late", O.Late);
  J.set("early", O.Early);
  J.set("redundant", O.Redundant);
  J.set("issued", O.issued());
}

void setMissFields(JsonValue &J, const SiteMissStats &M,
                   uint64_t Instructions) {
  J.set("accesses", M.Accesses);
  J.set("l1_misses", M.L1Misses);
  J.set("full_misses", M.FullMisses);
  J.set("stall_cycles", M.StallCycles);
  if (Instructions != 0) {
    double PerKilo = 1000.0 / static_cast<double>(Instructions);
    J.set("l1_mpki", static_cast<double>(M.L1Misses) * PerKilo);
    J.set("mem_mpki", static_cast<double>(M.FullMisses) * PerKilo);
  }
}

} // namespace

JsonValue sprof::attributionToJson(const AttributionData &Attr,
                                   const FeedbackResult *Feedback,
                                   uint64_t Instructions) {
  JsonValue J = JsonValue::object();
  J.set("enabled", Attr.Enabled);
  J.set("finalized", Attr.Finalized);
  J.set("num_sites", Attr.NumSites);
  JsonValue Outcomes = JsonValue::object();
  setOutcomeFields(Outcomes, Attr.Total);
  J.set("outcomes", std::move(Outcomes));

  // Per-class rollups of outcomes and misses; sites without a feedback
  // verdict (and the unattributed bucket) land in "none".
  PrefetchOutcomeCounts ClassOutcomes[NumStrideClasses];
  SiteMissStats ClassMisses[NumStrideClasses];
  SiteMissStats TotalMisses;

  JsonValue Sites = JsonValue::array();
  for (uint32_t S = 0; S != Attr.NumSites + 1 &&
                       S < static_cast<uint32_t>(Attr.PerSite.size());
       ++S) {
    const PrefetchOutcomeCounts &O = Attr.PerSite[S];
    const SiteMissStats &M = Attr.SiteMiss[S];
    TotalMisses += M;
    StrideClass C = StrideClass::None;
    if (S < Attr.NumSites && Feedback && S < Feedback->SiteClass.size())
      C = Feedback->SiteClass[S];
    ClassOutcomes[static_cast<size_t>(C)] += O;
    ClassMisses[static_cast<size_t>(C)] += M;
    if (O.issued() == 0 && M.Accesses == 0)
      continue;
    JsonValue SJ = JsonValue::object();
    if (S == Attr.NumSites)
      SJ.set("site", "unattributed");
    else
      SJ.set("site", S);
    SJ.set("class", strideClassName(C));
    setOutcomeFields(SJ, O);
    setMissFields(SJ, M, Instructions);
    Sites.push(std::move(SJ));
  }
  J.set("per_site", std::move(Sites));

  JsonValue ByClass = JsonValue::object();
  static const char *ClassKeys[NumStrideClasses] = {"none", "ssst", "pmst",
                                                    "wsst"};
  for (size_t C = 0; C != NumStrideClasses; ++C) {
    JsonValue CJ = JsonValue::object();
    setOutcomeFields(CJ, ClassOutcomes[C]);
    setMissFields(CJ, ClassMisses[C], Instructions);
    ByClass.set(ClassKeys[C], std::move(CJ));
  }
  J.set("by_class", std::move(ByClass));

  JsonValue Totals = JsonValue::object();
  setMissFields(Totals, TotalMisses, Instructions);
  J.set("demand_misses", std::move(Totals));
  return J;
}

JsonValue sprof::profileDiffToJson(const ProfileDiffResult &Diff) {
  JsonValue J = JsonValue::object();
  J.set("num_sites", Diff.NumSites);
  J.set("sites_compared", Diff.SitesCompared);
  J.set("top_stride_matches", Diff.TopStrideMatches);
  J.set("class_matches", Diff.ClassMatches);
  J.set("top_stride_agreement", Diff.TopStrideAgreement);
  J.set("class_agreement", Diff.ClassAgreement);
  J.set("weighted_accuracy", Diff.WeightedAccuracy);

  static const char *ClassKeys[NumStrideClasses] = {"none", "ssst", "pmst",
                                                    "wsst"};
  JsonValue Flips = JsonValue::object();
  for (size_t A = 0; A != NumStrideClasses; ++A) {
    JsonValue Row = JsonValue::object();
    for (size_t B = 0; B != NumStrideClasses; ++B)
      Row.set(ClassKeys[B], Diff.Flips[A][B]);
    Flips.set(ClassKeys[A], std::move(Row));
  }
  J.set("class_flips", std::move(Flips));

  JsonValue Sites = JsonValue::array();
  for (const SiteDiffEntry &E : Diff.Sites) {
    JsonValue SJ = JsonValue::object();
    SJ.set("site", E.Site);
    SJ.set("weight_a", E.WeightA);
    SJ.set("weight_b", E.WeightB);
    SJ.set("top_stride_a", E.TopStrideA);
    SJ.set("top_stride_b", E.TopStrideB);
    SJ.set("top_stride_match", E.TopStrideMatch);
    SJ.set("top4_overlap", E.Top4Overlap);
    SJ.set("class_a", strideClassName(E.ClassA));
    SJ.set("class_b", strideClassName(E.ClassB));
    SJ.set("score", E.Score);
    Sites.push(std::move(SJ));
  }
  J.set("sites", std::move(Sites));
  return J;
}

JsonValue sprof::selfProfileToJson(const EngineSelfProfiler &SP) {
  JsonValue J = JsonValue::object();
  J.set("window", SP.window());
  J.set("total_samples", SP.totalSamples());
  JsonValue Entries = JsonValue::array();
  for (const EngineSelfProfiler::Entry &E : SP.entries()) {
    JsonValue EJ = JsonValue::object();
    EJ.set("workload", E.Workload);
    EJ.set("phase", E.Phase);
    EJ.set("op", SP.slotName(E.Slot));
    EJ.set("samples", E.Samples);
    EJ.set("ns", E.Ns);
    Entries.push(std::move(EJ));
  }
  J.set("entries", std::move(Entries));
  return J;
}

JsonValue sprof::metricsToJson(const MetricsRegistry &Registry) {
  JsonValue J = JsonValue::object();

  JsonValue Counters = JsonValue::object();
  for (const auto &[Name, C] : Registry.counters())
    Counters.set(Name, C.value());
  J.set("counters", std::move(Counters));

  JsonValue Gauges = JsonValue::object();
  for (const auto &[Name, G] : Registry.gauges())
    Gauges.set(Name, G.value());
  J.set("gauges", std::move(Gauges));

  JsonValue Histograms = JsonValue::object();
  for (const auto &[Name, H] : Registry.histograms()) {
    JsonValue HJ = JsonValue::object();
    HJ.set("count", H.count());
    HJ.set("sum", H.sum());
    HJ.set("min", H.min());
    HJ.set("max", H.max());
    HJ.set("avg", H.average());
    JsonValue Bounds = JsonValue::array();
    for (uint64_t B : H.bounds())
      Bounds.push(B);
    HJ.set("bucket_upper_bounds", std::move(Bounds));
    JsonValue BucketCounts = JsonValue::array();
    for (uint64_t C : H.bucketCounts())
      BucketCounts.push(C);
    HJ.set("bucket_counts", std::move(BucketCounts));
    Histograms.set(Name, std::move(HJ));
  }
  J.set("histograms", std::move(Histograms));
  return J;
}

JsonValue sprof::jobRecordToJson(const JobRecord &Record) {
  JsonValue J = JsonValue::object();
  J.set("id", static_cast<uint64_t>(Record.Id));
  J.set("name", Record.Name);
  J.set("category", Record.Category);
  JsonValue Deps = JsonValue::array();
  for (size_t Dep : Record.Deps)
    Deps.push(static_cast<uint64_t>(Dep));
  J.set("deps", std::move(Deps));
  J.set("ready_us", Record.ReadyUs);
  J.set("start_us", Record.StartUs);
  J.set("duration_us", Record.DurationUs);
  J.set("worker", Record.Worker);
  J.set("ok", Record.Ok);
  if (!Record.Ok)
    J.set("error", Record.Error);
  J.set("metrics", metricsToJson(Record.Metrics));
  return J;
}

JsonValue sprof::jobsToJson(const ObsSession &Session) {
  JsonValue Jobs = JsonValue::array();
  for (const JobRecord &Record : Session.jobs())
    Jobs.push(jobRecordToJson(Record));
  return Jobs;
}

JsonValue sprof::traceCaptureToJson(const TraceCaptureInfo &Capture) {
  JsonValue J = JsonValue::object();
  J.set("path", Capture.Path);
  J.set("schema", Capture.Schema);
  J.set("events", Capture.Events);
  J.set("bytes", Capture.Bytes);
  return J;
}

JsonValue sprof::traceTierToJson(const TraceTierStats &TT) {
  JsonValue J = JsonValue::object();
  J.set("traces_compiled", TT.TracesCompiled);
  J.set("traces_adopted", TT.TracesAdopted);
  J.set("compile_aborts", TT.CompileAborts);
  J.set("invalidations", TT.Invalidations);
  J.set("entries", TT.Entries);
  J.set("iterations", TT.Iterations);
  J.set("side_exits", TT.SideExits);
  J.set("loop_exits", TT.LoopExits);
  J.set("fuel_exits", TT.FuelExits);
  J.set("on_trace_insts", TT.OnTraceInsts);
  J.set("on_trace_refs", TT.OnTraceRefs);
  // Mispredicted entries per entry: the tier's central health number (a
  // high rate means the selected paths stopped matching the program).
  if (TT.Entries != 0)
    J.set("side_exit_rate", static_cast<double>(TT.SideExits) /
                                static_cast<double>(TT.Entries));
  JsonValue Traces = JsonValue::array();
  for (const TraceTierStats::PerTrace &T : TT.Traces) {
    JsonValue TJ = JsonValue::object();
    TJ.set("id", static_cast<uint64_t>(T.Id));
    TJ.set("head_pc", static_cast<uint64_t>(T.HeadPC));
    TJ.set("num_ops", static_cast<uint64_t>(T.NumOps));
    TJ.set("num_guards", static_cast<uint64_t>(T.NumGuards));
    TJ.set("entries", T.Entries);
    TJ.set("iterations", T.Iterations);
    TJ.set("side_exits", T.SideExits);
    TJ.set("loop_exits", T.LoopExits);
    TJ.set("fuel_exits", T.FuelExits);
    TJ.set("invalidated", T.Invalidated);
    JsonValue GE = JsonValue::array();
    for (uint64_t E : T.GuardExits)
      GE.push(E);
    TJ.set("guard_exits", std::move(GE));
    Traces.push(std::move(TJ));
  }
  J.set("traces", std::move(Traces));
  return J;
}

JsonValue sprof::profileRunToJson(const ProfileRunResult &R,
                                  const ReportOptions &Options) {
  JsonValue J = JsonValue::object();
  J.set("method", profilingMethodName(R.Method));
  J.set("stats", runStatsToJson(R.Stats));
  J.set("edge_profile", edgeProfileToJson(R.Edges));
  J.set("stride_profile", strideProfileToJson(R.Strides, Options));
  J.set("profiled_sites",
        static_cast<uint64_t>(R.Instr.ProfiledSites.size()));
  J.set("stride_invocations", R.StrideInvocations);
  J.set("stride_processed", R.StrideProcessed);
  J.set("lfu_calls", R.LfuCalls);
  if (R.Capture.Enabled)
    J.set("trace", traceCaptureToJson(R.Capture));
  if (R.TraceTier.Enabled)
    J.set("trace_tier", traceTierToJson(R.TraceTier));
  return J;
}

JsonValue sprof::timedRunToJson(const TimedRunResult &R,
                                const StrideProfile &SP,
                                const ClassifierConfig &Config,
                                const ReportOptions &Options) {
  JsonValue J = JsonValue::object();
  J.set("stats", runStatsToJson(R.Stats));
  J.set("prefetches", prefetchStatsToJson(R.Prefetches));
  J.set("classification", feedbackToJson(R.Feedback, SP, Config));
  if (R.TraceTier.Enabled)
    J.set("trace_tier", traceTierToJson(R.TraceTier));
  (void)Options;
  return J;
}

JsonValue sprof::buildRunReport(const std::string &WorkloadName,
                                const PipelineConfig &Config,
                                const ProfileRunResult *Profile,
                                const TimedRunResult *Timed,
                                const RunStats *Baseline,
                                const ObsSession *Obs,
                                const ReportOptions &Options,
                                const ProfileDiffResult *Diff) {
  JsonValue J = JsonValue::object();
  J.set("schema", RunReportSchemaV5);
  J.set("workload", WorkloadName);
  J.set("config", pipelineConfigToJson(Config));
  if (Profile)
    J.set("profile_run", profileRunToJson(*Profile, Options));
  if (Baseline)
    J.set("baseline_run", runStatsToJson(*Baseline));
  if (Timed) {
    // The classification ratios come from the profile that fed feedback;
    // an empty profile still yields a valid (ratio-less) section.
    static const StrideProfile EmptySP;
    const StrideProfile &SP = Profile ? Profile->Strides : EmptySP;
    J.set("timed_run",
          timedRunToJson(*Timed, SP, Config.Classifier, Options));
    if (Baseline && Timed->Stats.Cycles != 0)
      J.set("speedup", static_cast<double>(Baseline->Cycles) /
                           static_cast<double>(Timed->Stats.Cycles));
    if (Timed->Attribution.Enabled)
      J.set("attribution",
            attributionToJson(Timed->Attribution, &Timed->Feedback,
                              Timed->Stats.Instructions));
  }
  if (Diff)
    J.set("profile_diff", profileDiffToJson(*Diff));
  if (Obs) {
    J.set("metrics", metricsToJson(Obs->registry()));
    if (!Obs->jobs().empty())
      J.set("jobs", jobsToJson(*Obs));
    if (const EngineSelfProfiler *SP = Obs->selfProfiler())
      if (SP->totalSamples() != 0)
        J.set("self_profile", selfProfileToJson(*SP));
  }
  return J;
}

void sprof::writeRunReport(std::ostream &OS,
                           const std::string &WorkloadName,
                           const PipelineConfig &Config,
                           const ProfileRunResult *Profile,
                           const TimedRunResult *Timed,
                           const RunStats *Baseline, const ObsSession *Obs,
                           const ReportOptions &Options,
                           const ProfileDiffResult *Diff) {
  buildRunReport(WorkloadName, Config, Profile, Timed, Baseline, Obs,
                 Options, Diff)
      .write(OS);
  OS << '\n';
}
