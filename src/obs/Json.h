//===- obs/Json.h - Minimal JSON value model, writer, parser ----*- C++ -*-===//
//
// Part of the StrideProf project, a reproduction of Youfeng Wu, "Efficient
// Discovery of Regular Stride Patterns in Irregular Programs and Its Use in
// Compiler Prefetching" (PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small self-contained JSON library for the observability layer: run
/// reports, Chrome trace events, and bench regression files are all emitted
/// through JsonValue, and the schema-validation tests parse them back with
/// the same class. Objects preserve insertion order so emitted reports are
/// stable and diffable.
///
//===----------------------------------------------------------------------===//

#ifndef SPROF_OBS_JSON_H
#define SPROF_OBS_JSON_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sprof {

/// One JSON value: null, boolean, number (integer or double), string,
/// array, or object. Build with the static factories and set/push, read
/// back with the as*/get accessors.
class JsonValue {
public:
  enum class Kind { Null, Bool, Int, Double, String, Array, Object };

  JsonValue() = default;
  JsonValue(bool V) : K(Kind::Bool), B(V) {}
  JsonValue(int64_t V) : K(Kind::Int), I(V) {}
  JsonValue(uint64_t V) : K(Kind::Int), I(static_cast<int64_t>(V)) {}
  JsonValue(int V) : K(Kind::Int), I(V) {}
  JsonValue(unsigned V) : K(Kind::Int), I(V) {}
  JsonValue(double V) : K(Kind::Double), D(V) {}
  JsonValue(std::string V) : K(Kind::String), S(std::move(V)) {}
  JsonValue(std::string_view V) : K(Kind::String), S(V) {}
  JsonValue(const char *V) : K(Kind::String), S(V) {}

  static JsonValue array() {
    JsonValue V;
    V.K = Kind::Array;
    return V;
  }
  static JsonValue object() {
    JsonValue V;
    V.K = Kind::Object;
    return V;
  }

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isObject() const { return K == Kind::Object; }
  bool isArray() const { return K == Kind::Array; }
  bool isNumber() const { return K == Kind::Int || K == Kind::Double; }
  bool isString() const { return K == Kind::String; }

  bool asBool() const { return B; }
  /// Integer view of a number (doubles are truncated).
  int64_t asInt() const {
    return K == Kind::Double ? static_cast<int64_t>(D) : I;
  }
  uint64_t asUInt() const { return static_cast<uint64_t>(asInt()); }
  double asDouble() const {
    return K == Kind::Int ? static_cast<double>(I) : D;
  }
  const std::string &asString() const { return S; }

  // -- Array access ------------------------------------------------------
  size_t size() const {
    return K == Kind::Object ? Members.size() : Items.size();
  }
  const JsonValue &at(size_t Index) const { return Items[Index]; }
  const std::vector<JsonValue> &items() const { return Items; }
  JsonValue &push(JsonValue V) {
    Items.push_back(std::move(V));
    return Items.back();
  }

  // -- Object access -----------------------------------------------------
  /// Sets (or replaces) \p Key. Returns *this so builds can chain.
  JsonValue &set(std::string_view Key, JsonValue V);
  /// Member lookup; nullptr when absent or not an object.
  const JsonValue *get(std::string_view Key) const;
  const std::vector<std::pair<std::string, JsonValue>> &members() const {
    return Members;
  }

  // -- Serialization -----------------------------------------------------
  /// Writes the value; \p Indent > 0 pretty-prints with that step.
  void write(std::ostream &OS, unsigned Indent = 2) const;
  std::string str(unsigned Indent = 2) const;

  /// Parses \p Text into \p Out. Returns false (and fills \p Error when
  /// given) on malformed input.
  static bool parse(std::string_view Text, JsonValue &Out,
                    std::string *Error = nullptr);

private:
  void writeImpl(std::ostream &OS, unsigned Indent, unsigned Depth) const;

  Kind K = Kind::Null;
  bool B = false;
  int64_t I = 0;
  double D = 0.0;
  std::string S;
  std::vector<JsonValue> Items;
  std::vector<std::pair<std::string, JsonValue>> Members;
};

/// Writes \p V to \p Path (pretty-printed, trailing newline). Returns false
/// when the file cannot be opened.
bool writeJsonFile(const std::string &Path, const JsonValue &V);

} // namespace sprof

#endif // SPROF_OBS_JSON_H
