//===- obs/Trace.cpp - Scoped phase tracing (Chrome trace events) ----------===//
//
// Part of the StrideProf project (see Trace.h for the project reference).
//
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"

#include "obs/FlightRecorder.h"
#include "obs/Json.h"
#include "obs/Obs.h"

#include <cassert>
#include <chrono>
#include <fstream>
#include <ostream>

using namespace sprof;

static uint64_t steadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

TraceCollector::TraceCollector() : EpochNs(steadyNowNs()) {}

uint64_t TraceCollector::nowUs() const {
  return (steadyNowNs() - EpochNs) / 1000;
}

size_t TraceCollector::beginSpan(std::string_view Name,
                                 std::string_view Category) {
  // Phase enters double as flight-recorder breadcrumbs on threads an
  // armed engine bound to a lane; a no-op everywhere else.
  FlightRecorder::notePhase(Name);
  TraceEvent E;
  E.Name = std::string(Name);
  E.Category = std::string(Category);
  E.StartUs = nowUs();
  E.Depth = Depth++;
  Events.push_back(std::move(E));
  return Events.size() - 1;
}

void TraceCollector::endSpan(size_t Id) {
  assert(Id < Events.size() && "bad span id");
  assert(Events[Id].DurationUs == UINT64_MAX && "span ended twice");
  assert(Depth > 0 && "unbalanced endSpan");
  Events[Id].DurationUs = nowUs() - Events[Id].StartUs;
  --Depth;
}

void TraceCollector::appendCompletedSpan(std::string_view Name,
                                         std::string_view Category,
                                         uint64_t StartUs,
                                         uint64_t DurationUs, uint32_t Track,
                                         uint32_t Depth) {
  TraceEvent E;
  E.Name = std::string(Name);
  E.Category = std::string(Category);
  E.StartUs = StartUs;
  E.DurationUs = DurationUs;
  E.Depth = Depth;
  E.Track = Track;
  Events.push_back(std::move(E));
}

void TraceCollector::appendForeign(const TraceCollector &Other,
                                   uint64_t ShiftUs, uint32_t Track,
                                   uint32_t DepthBase) {
  for (const TraceEvent &E : Other.Events) {
    if (E.DurationUs == UINT64_MAX)
      continue;
    TraceEvent Copy = E;
    Copy.StartUs += ShiftUs;
    Copy.Depth += DepthBase;
    Copy.Track = Track;
    Events.push_back(std::move(Copy));
  }
}

void TraceCollector::appendFlowEdge(std::string_view Name, uint64_t FromTsUs,
                                    uint32_t FromTrack, uint64_t ToTsUs,
                                    uint32_t ToTrack) {
  FlowEdge E;
  E.Name = std::string(Name);
  E.FromTsUs = FromTsUs;
  E.FromTrack = FromTrack;
  E.ToTsUs = ToTsUs;
  E.ToTrack = ToTrack;
  FlowEdges.push_back(std::move(E));
}

void TraceCollector::appendCounterSample(std::string_view Name,
                                         uint64_t TsUs, double Value) {
  CounterSample S;
  S.Name = std::string(Name);
  S.TsUs = TsUs;
  S.Value = Value;
  CounterSamples.push_back(std::move(S));
}

bool TraceCollector::hasSpan(std::string_view Name) const {
  for (const TraceEvent &E : Events)
    if (E.DurationUs != UINT64_MAX && E.Name == Name)
      return true;
  return false;
}

void TraceCollector::writeChromeTrace(std::ostream &OS) const {
  JsonValue Root = JsonValue::object();
  JsonValue EventsJson = JsonValue::array();
  for (const TraceEvent &E : Events) {
    if (E.DurationUs == UINT64_MAX)
      continue; // never ended; an aborted run
    JsonValue J = JsonValue::object();
    J.set("name", E.Name);
    J.set("cat", E.Category.empty() ? std::string("sprof") : E.Category);
    J.set("ph", "X");
    J.set("ts", E.StartUs);
    J.set("dur", E.DurationUs);
    J.set("pid", 1);
    J.set("tid", static_cast<uint64_t>(E.Track) + 1);
    EventsJson.push(std::move(J));
  }
  // Dependency arrows: one "s"/"f" pair per edge, matched by id. The
  // destination's bp:"e" binds the arrowhead to the enclosing slice so
  // the arrow lands on the consumer span instead of the next event.
  for (size_t I = 0; I != FlowEdges.size(); ++I) {
    const FlowEdge &E = FlowEdges[I];
    JsonValue Start = JsonValue::object();
    Start.set("name", E.Name);
    Start.set("cat", "job-dep");
    Start.set("ph", "s");
    Start.set("id", static_cast<uint64_t>(I) + 1);
    Start.set("ts", E.FromTsUs);
    Start.set("pid", 1);
    Start.set("tid", static_cast<uint64_t>(E.FromTrack) + 1);
    EventsJson.push(std::move(Start));
    JsonValue Finish = JsonValue::object();
    Finish.set("name", E.Name);
    Finish.set("cat", "job-dep");
    Finish.set("ph", "f");
    Finish.set("bp", "e");
    Finish.set("id", static_cast<uint64_t>(I) + 1);
    Finish.set("ts", E.ToTsUs);
    Finish.set("pid", 1);
    Finish.set("tid", static_cast<uint64_t>(E.ToTrack) + 1);
    EventsJson.push(std::move(Finish));
  }
  // Counter tracks render on a dedicated lane (tid 0) below the spans.
  for (const CounterSample &S : CounterSamples) {
    JsonValue J = JsonValue::object();
    J.set("name", S.Name);
    J.set("cat", "sprof");
    J.set("ph", "C");
    J.set("ts", S.TsUs);
    J.set("pid", 1);
    J.set("tid", 0);
    JsonValue Args = JsonValue::object();
    Args.set("value", S.Value);
    J.set("args", std::move(Args));
    EventsJson.push(std::move(J));
  }
  Root.set("traceEvents", std::move(EventsJson));
  Root.set("displayTimeUnit", "ms");
  Root.write(OS);
  OS << '\n';
}

bool TraceCollector::writeChromeTraceFile(const std::string &Path) const {
  std::ofstream OS(Path);
  if (!OS)
    return false;
  writeChromeTrace(OS);
  return static_cast<bool>(OS);
}

TraceSpan::TraceSpan(ObsSession *Session, std::string_view Name,
                     std::string_view Category, unsigned Level) {
  if (TraceCollector *Collector =
          Session ? Session->traceAtLevel(Level) : nullptr)
    open(*Collector, Name, Category);
}
