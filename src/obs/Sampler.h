//===- obs/Sampler.h - Background time-series metric sampler ----*- C++ -*-===//
//
// Part of the StrideProf project, a reproduction of Youfeng Wu, "Efficient
// Discovery of Regular Stride Patterns in Irregular Programs and Its Use in
// Compiler Prefetching" (PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Turns end-of-run totals into a time series: a TelemetrySampler owns a
/// background thread that snapshots a MetricsRegistry's counters and gauges
/// at a fixed interval into a bounded ring. With the ring in hand, a run's
/// MPKI, useful-prefetch ratio, or drain backlog are visible *over the
/// run* instead of only at the end.
///
/// Sampling reads race-free against live producers because counters and
/// gauges are relaxed atomics and the registry serializes map discovery
/// (Metrics.h); histograms are multi-word and excluded. stop() joins the
/// thread and then takes one final synchronized snapshot, so the last ring
/// entry always equals the registry's end-of-run totals exactly -- tests
/// key on that determinism guarantee.
///
/// The ring is bounded (drop-oldest) so a long run cannot grow memory
/// without bound; the number of dropped snapshots is reported alongside.
/// Serialization: timeSeriesToJson renders the "sprof.timeseries/1"
/// artifact, and ObsSession folds the samples into the Chrome trace as
/// counter ("C") events.
///
//===----------------------------------------------------------------------===//

#ifndef SPROF_OBS_SAMPLER_H
#define SPROF_OBS_SAMPLER_H

#include "obs/Json.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace sprof {

/// One point-in-time snapshot of every scalar metric.
struct TimeSeriesSample {
  uint64_t TsUs = 0; ///< on the owning session's trace clock
  std::vector<std::pair<std::string, uint64_t>> Counters;
  std::vector<std::pair<std::string, double>> Gauges;
};

/// Background sampler over one registry. Lifecycle: construct, start(),
/// stop() (idempotent; also run by the destructor). Ring accessors are
/// only safe after stop().
class TelemetrySampler {
public:
  /// \p Clock supplies timestamps (TraceCollector::nowUs is thread-safe);
  /// \p IntervalUs is the sampling period; \p RingCapacity bounds the ring
  /// (minimum 2, so the final snapshot never evicts the whole history).
  TelemetrySampler(const MetricsRegistry &Registry,
                   const TraceCollector &Clock, uint64_t IntervalUs,
                   size_t RingCapacity);
  ~TelemetrySampler();

  TelemetrySampler(const TelemetrySampler &) = delete;
  TelemetrySampler &operator=(const TelemetrySampler &) = delete;

  void start();
  /// Stops and joins the sampler thread, then takes the final snapshot.
  /// Safe to call repeatedly; only the first call snapshots.
  void stop();
  bool running() const { return Thr.joinable(); }

  uint64_t intervalUs() const { return IntervalUs; }
  size_t ringCapacity() const { return RingCapacity; }

  // -- Post-stop accessors ------------------------------------------------
  /// Ring contents, oldest first. The last entry is the stop() snapshot.
  const std::deque<TimeSeriesSample> &samples() const { return Ring; }
  /// Snapshots taken over the sampler's lifetime (>= samples().size()).
  uint64_t samplesTaken() const { return Taken; }
  /// Snapshots evicted because the ring was full.
  uint64_t dropped() const { return Taken - Ring.size(); }

private:
  void threadMain();
  void takeSample();

  const MetricsRegistry &Registry;
  const TraceCollector &Clock;
  uint64_t IntervalUs;
  size_t RingCapacity;

  std::deque<TimeSeriesSample> Ring;
  uint64_t Taken = 0;
  bool Stopped = false;

  std::thread Thr;
  std::mutex Mu;
  std::condition_variable Cv;
  bool StopRequested = false;
};

/// Schema identifier of the time-series artifact.
inline constexpr const char *TimeSeriesSchemaV1 = "sprof.timeseries/1";

/// Renders the sampler's ring as the columnar "sprof.timeseries/1"
/// document: one "timestamps_us" array plus per-metric value arrays of the
/// same length (metrics discovered mid-run are back-filled with zero).
/// Call after stop().
JsonValue timeSeriesToJson(const TelemetrySampler &Sampler);

} // namespace sprof

#endif // SPROF_OBS_SAMPLER_H
