//===- obs/Sharded.h - Per-worker metric shards -----------------*- C++ -*-===//
//
// Part of the StrideProf project, a reproduction of Youfeng Wu, "Efficient
// Discovery of Regular Stride Patterns in Irregular Programs and Its Use in
// Compiler Prefetching" (PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lock-free aggregation for concurrent producers: a ShardedMetricsRegistry
/// owns one MetricsRegistry per worker lane. Each worker folds its
/// job-local metric scopes into its own shard (single owner, so no
/// cross-thread contention beyond the shard registry's own creation-path
/// lock, which only that worker takes), and after the workers quiesce the
/// shards fold into one session registry in shard order.
///
/// Because counter addition and histogram merging are commutative and
/// associative (Metrics.h), the folded totals are bit-identical to a serial
/// run that merged every scope directly -- regardless of which worker ran
/// which job. Gauges are last-write-wins and therefore NOT
/// order-independent; callers that need deterministic gauges replay them in
/// a fixed order after the fold (MetricsRegistry::setGaugesFrom), which is
/// what ExperimentEngine does per job id.
///
//===----------------------------------------------------------------------===//

#ifndef SPROF_OBS_SHARDED_H
#define SPROF_OBS_SHARDED_H

#include "obs/Metrics.h"

#include <cstddef>
#include <memory>
#include <vector>

namespace sprof {

/// A fixed set of per-worker MetricsRegistry shards.
class ShardedMetricsRegistry {
public:
  /// Creates \p NumShards empty shards (at least one).
  explicit ShardedMetricsRegistry(size_t NumShards);

  size_t numShards() const { return Shards.size(); }

  /// The shard for worker lane \p Worker (modulo the shard count, so any
  /// worker index is safe). Distinct workers get distinct registries; a
  /// shard must only ever be written by its owning worker.
  MetricsRegistry &shard(size_t Worker) {
    return *Shards[Worker % Shards.size()];
  }
  const MetricsRegistry &shard(size_t Worker) const {
    return *Shards[Worker % Shards.size()];
  }

  /// Folds every shard into \p Target in shard order. Counters and
  /// histograms land bit-identical to any other merge order; gauges take
  /// the highest-indexed shard's value (replay them afterwards if that
  /// matters). Callers must ensure all shard writers have quiesced.
  void mergeInto(MetricsRegistry &Target) const;

  /// Resets every shard to empty for reuse across engine drains.
  void clear();

private:
  std::vector<std::unique_ptr<MetricsRegistry>> Shards;
};

} // namespace sprof

#endif // SPROF_OBS_SHARDED_H
