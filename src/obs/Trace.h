//===- obs/Trace.h - Scoped phase tracing (Chrome trace events) -*- C++ -*-===//
//
// Part of the StrideProf project, a reproduction of Youfeng Wu, "Efficient
// Discovery of Regular Stride Patterns in Irregular Programs and Its Use in
// Compiler Prefetching" (PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tracing half of the observability layer. A TraceCollector records
/// nested begin/end phase events (instrument, execute, classify,
/// prefetch-insert, ...) with wall-clock microsecond timestamps; TraceSpan
/// is the RAII producer. The collector can serialize everything as Chrome
/// `trace_event` JSON ("X" complete events), which chrome://tracing and
/// https://ui.perfetto.dev open directly.
///
/// The collector is single-threaded, like the pipeline itself; depth is
/// tracked with a simple begin/end counter so tests can assert nesting.
///
//===----------------------------------------------------------------------===//

#ifndef SPROF_OBS_TRACE_H
#define SPROF_OBS_TRACE_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace sprof {

class ObsSession;

/// One counter-track point: serialized as a Chrome trace counter ("C")
/// event, which chrome://tracing and Perfetto render as a value-over-time
/// track. The TelemetrySampler's ring is folded into these at
/// artifact-write time.
struct CounterSample {
  std::string Name;
  uint64_t TsUs = 0;
  double Value = 0.0;
};

/// One causal edge between two points on the trace timeline, serialized
/// as a Chrome flow-event pair ("s" at the source, "f" with bp:"e" at the
/// destination, matched by id). The experiment engine emits one per
/// job-graph dependency edge so chrome://tracing draws arrows from each
/// job's finish to its dependents' starts.
struct FlowEdge {
  std::string Name;       ///< rendered on the arrow (dependency job name)
  uint64_t FromTsUs = 0;  ///< source timestamp (producer finish)
  uint32_t FromTrack = 0; ///< source display lane (producer's worker)
  uint64_t ToTsUs = 0;    ///< destination timestamp (consumer start)
  uint32_t ToTrack = 0;   ///< destination display lane
};

/// One recorded span. DurationUs stays UINT64_MAX until the span ends.
struct TraceEvent {
  std::string Name;
  std::string Category;
  uint64_t StartUs = 0;
  uint64_t DurationUs = UINT64_MAX;
  uint32_t Depth = 0; ///< nesting depth when the span began (0 = root)
  /// Display track (Chrome trace "tid"). Spans recorded through
  /// beginSpan stay on track 0; merged-in foreign events (engine jobs)
  /// carry the track of the worker that ran them, so parallel jobs render
  /// as parallel lanes instead of overlapping on one line.
  uint32_t Track = 0;
};

/// Records spans against a steady clock anchored at construction.
class TraceCollector {
public:
  TraceCollector();

  /// Microseconds since the collector was created.
  uint64_t nowUs() const;

  /// Opens a span; the returned id is passed to endSpan. Spans must end in
  /// LIFO order (which the RAII TraceSpan guarantees).
  size_t beginSpan(std::string_view Name, std::string_view Category);
  void endSpan(size_t Id);

  uint32_t currentDepth() const { return Depth; }
  const std::vector<TraceEvent> &events() const { return Events; }

  /// True if some completed span has \p Name.
  bool hasSpan(std::string_view Name) const;

  /// Appends an already-completed span (no begin/end pairing, no effect on
  /// the current depth). \p StartUs is on THIS collector's clock; \p Track
  /// selects the display lane. Used by the experiment engine to stamp one
  /// span per finished job into the session trace.
  void appendCompletedSpan(std::string_view Name, std::string_view Category,
                           uint64_t StartUs, uint64_t DurationUs,
                           uint32_t Track, uint32_t Depth = 0);

  /// Appends every completed event of \p Other, shifted by \p ShiftUs onto
  /// this collector's clock (\p ShiftUs = the value of nowUs() here when
  /// \p Other's epoch started) and one nesting level below \p DepthBase,
  /// on lane \p Track. This folds a job-local trace into the session
  /// trace after the job finishes.
  void appendForeign(const TraceCollector &Other, uint64_t ShiftUs,
                     uint32_t Track, uint32_t DepthBase = 1);

  /// Appends one causal edge (serialized as a paired "s"/"f" flow event;
  /// ids are assigned at write time from the edge's index). Timestamps
  /// are on this collector's clock. Single-threaded like the span API.
  void appendFlowEdge(std::string_view Name, uint64_t FromTsUs,
                      uint32_t FromTrack, uint64_t ToTsUs, uint32_t ToTrack);
  const std::vector<FlowEdge> &flowEdges() const { return FlowEdges; }

  /// Appends one counter-track point (emitted as a "C" event). \p TsUs is
  /// on this collector's clock. Single-threaded like the span API; the
  /// session folds sampler rings in after producers quiesce.
  void appendCounterSample(std::string_view Name, uint64_t TsUs,
                           double Value);
  const std::vector<CounterSample> &counterSamples() const {
    return CounterSamples;
  }

  /// Chrome trace-event JSON: {"traceEvents": [{"ph": "X", ...}, ...]},
  /// plus one "C" (counter) event per recorded counter sample.
  /// Unfinished spans are skipped.
  void writeChromeTrace(std::ostream &OS) const;
  bool writeChromeTraceFile(const std::string &Path) const;

private:
  std::vector<TraceEvent> Events;
  std::vector<FlowEdge> FlowEdges;
  std::vector<CounterSample> CounterSamples;
  uint32_t Depth = 0;
  uint64_t EpochNs = 0;
};

/// RAII span. Constructed against a collector (always active) or against an
/// ObsSession (active only when the session exists, trace collection is on,
/// and \p Level does not exceed the configured trace detail).
class TraceSpan {
public:
  TraceSpan(TraceCollector *Collector, std::string_view Name,
            std::string_view Category = "") {
    if (Collector)
      open(*Collector, Name, Category);
  }
  TraceSpan(ObsSession *Session, std::string_view Name,
            std::string_view Category = "", unsigned Level = 1);
  ~TraceSpan() {
    if (C)
      C->endSpan(Id);
  }

  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;

  bool active() const { return C != nullptr; }

private:
  void open(TraceCollector &Collector, std::string_view Name,
            std::string_view Category) {
    C = &Collector;
    Id = C->beginSpan(Name, Category);
  }

  TraceCollector *C = nullptr;
  size_t Id = 0;
};

} // namespace sprof

#endif // SPROF_OBS_TRACE_H
