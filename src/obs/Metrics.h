//===- obs/Metrics.h - Low-overhead metrics registry ------------*- C++ -*-===//
//
// Part of the StrideProf project, a reproduction of Youfeng Wu, "Efficient
// Discovery of Regular Stride Patterns in Irregular Programs and Its Use in
// Compiler Prefetching" (PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The metrics half of the observability layer: a registry of named
/// counters, gauges, and fixed-bucket histograms that the pipeline, the
/// interpreter, and the profiling runtime report through.
///
/// The design keeps the *disabled* path nearly free on hot code: producers
/// resolve a metric once into a raw pointer (nullptr when telemetry is off)
/// and the per-event cost is a single predictable null test. The metric
/// objects themselves are header-inline single-word updates. Registry
/// storage is node-based (std::map) so resolved pointers stay valid for the
/// registry's lifetime.
///
/// Counters and gauges are single-writer/multi-reader: each scalar lives in
/// a relaxed std::atomic so the TelemetrySampler thread can read a
/// mid-run value without a data race, while the (single) producer's
/// read-modify-write stays a plain load+add+store -- no lock prefix, same
/// machine code as the non-atomic version. The registry's *map structure*
/// is guarded by a mutex on the creation/lookup path only; resolved-pointer
/// producers never touch it per event.
///
//===----------------------------------------------------------------------===//

#ifndef SPROF_OBS_METRICS_H
#define SPROF_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sprof {

/// Monotonically increasing event count. Written by exactly one thread at a
/// time; readable concurrently (sampler snapshots) through relaxed atomics.
class Counter {
public:
  Counter() = default;
  Counter(const Counter &Other)
      : Val(Other.Val.load(std::memory_order_relaxed)) {}
  Counter &operator=(const Counter &Other) {
    Val.store(Other.Val.load(std::memory_order_relaxed),
              std::memory_order_relaxed);
    return *this;
  }

  void inc(uint64_t N = 1) {
    // Single-writer: a relaxed load+store pair is exact and compiles to the
    // same add-to-memory a plain uint64_t would.
    Val.store(Val.load(std::memory_order_relaxed) + N,
              std::memory_order_relaxed);
  }
  uint64_t value() const { return Val.load(std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> Val{0};
};

/// Last-write-wins scalar (configuration values, run-level ratios).
/// Single-writer/multi-reader like Counter.
class Gauge {
public:
  Gauge() = default;
  Gauge(const Gauge &Other)
      : Val(Other.Val.load(std::memory_order_relaxed)) {}
  Gauge &operator=(const Gauge &Other) {
    Val.store(Other.Val.load(std::memory_order_relaxed),
              std::memory_order_relaxed);
    return *this;
  }

  void set(double V) { Val.store(V, std::memory_order_relaxed); }
  double value() const { return Val.load(std::memory_order_relaxed); }

private:
  std::atomic<double> Val{0.0};
};

/// Fixed-bucket histogram over unsigned samples. Bucket I counts samples
/// <= UpperBounds[I] (and greater than the previous bound); one overflow
/// bucket catches the rest. Also tracks count/sum/min/max exactly.
class Histogram {
public:
  /// Default bounds: powers of two 1, 2, 4, ..., 2^19.
  Histogram() : Histogram(exponentialBounds(1, 20)) {}
  explicit Histogram(std::vector<uint64_t> UpperBounds);

  void record(uint64_t Sample);

  /// Records \p N occurrences of \p Sample in one update; final state is
  /// identical to N single record(Sample) calls. Lets batched producers
  /// (StrideProfiler::profileBatch) report a whole block of equal-cost
  /// events with one bucket lookup.
  void record(uint64_t Sample, uint64_t N);

  uint64_t count() const { return Count; }
  uint64_t sum() const { return Sum; }
  uint64_t min() const { return Count ? Min : 0; }
  uint64_t max() const { return Max; }
  double average() const {
    return Count ? static_cast<double>(Sum) / static_cast<double>(Count)
                 : 0.0;
  }
  const std::vector<uint64_t> &bounds() const { return UpperBounds; }
  /// Size bounds().size() + 1; the last entry is the overflow bucket.
  const std::vector<uint64_t> &bucketCounts() const { return Buckets; }

  /// Bounds Start, Start*2, ..., Start*2^(NumBounds-1).
  static std::vector<uint64_t> exponentialBounds(uint64_t Start,
                                                 unsigned NumBounds);

  /// Accumulates \p Other into this histogram. Exact statistics
  /// (count/sum/min/max) always merge; bucket counts merge element-wise
  /// when both histograms share the same bounds (the normal case, since a
  /// metric name maps to one creation site) and are otherwise left as
  /// this histogram's own counts.
  void merge(const Histogram &Other);

private:
  std::vector<uint64_t> UpperBounds;
  std::vector<uint64_t> Buckets;
  uint64_t Count = 0;
  uint64_t Sum = 0;
  uint64_t Min = UINT64_MAX;
  uint64_t Max = 0;
};

/// Owns all metrics of one observability session, keyed by dotted names
/// ("strideprof.invocations"). Lookup creates on first use; repeated
/// lookups return the same object, whose address is stable.
///
/// Thread model: the creation/lookup path (counter/gauge/histogram) and the
/// scalar snapshot are serialized by an internal mutex, so a background
/// sampler may discover metrics while producers resolve new ones. Updates
/// through resolved pointers are lock-free (see Counter/Gauge). Histograms
/// are multi-word and are NOT safe to read mid-update; snapshots cover
/// counters and gauges only.
class MetricsRegistry {
public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry &Other);
  MetricsRegistry &operator=(const MetricsRegistry &Other);

  Counter &counter(std::string_view Name);
  Gauge &gauge(std::string_view Name);
  /// \p UpperBounds applies only when the histogram is created by this
  /// call; empty means the default exponential bounds.
  Histogram &histogram(std::string_view Name,
                       std::vector<uint64_t> UpperBounds = {});

  const std::map<std::string, Counter, std::less<>> &counters() const {
    return Counters;
  }
  const std::map<std::string, Gauge, std::less<>> &gauges() const {
    return Gauges;
  }
  const std::map<std::string, Histogram, std::less<>> &histograms() const {
    return Histograms;
  }

  /// Folds \p Other into this registry: counters add, gauges take
  /// \p Other's value (last write wins, like a direct set), histograms
  /// merge per Histogram::merge. Metrics missing here are created. This
  /// is how per-job metric scopes aggregate into a session registry.
  /// Counter and histogram folding is commutative and associative, so any
  /// merge order over a set of scopes yields bit-identical totals.
  void merge(const MetricsRegistry &Other);

  /// Copies \p Other's gauge values into this registry (creating missing
  /// gauges). Used after a sharded fold to replay gauges in a
  /// deterministic order, since gauge merging is last-write-wins.
  void setGaugesFrom(const MetricsRegistry &Other);

  /// Consistent point-in-time copy of every counter and gauge, sorted by
  /// name. Safe to call from a sampler thread while producers update
  /// resolved metrics and create new ones.
  void snapshotScalars(
      std::vector<std::pair<std::string, uint64_t>> &CountersOut,
      std::vector<std::pair<std::string, double>> &GaugesOut) const;

private:
  mutable std::mutex Mu; ///< guards map structure, not metric values
  std::map<std::string, Counter, std::less<>> Counters;
  std::map<std::string, Gauge, std::less<>> Gauges;
  std::map<std::string, Histogram, std::less<>> Histograms;
};

/// Statically-allocated write-only sinks for the null-object pattern:
/// producers that would otherwise test `if (Sink)` on every event instead
/// resolve their sink pointers once -- to a real registry metric when a
/// session is attached, to these throwaway objects when not -- and write
/// unconditionally. The dummies are thread-local so concurrent engine jobs
/// never share (or race on) a cache line; their contents are never read.
/// The dummy histogram has no bucket bounds, so a record() into it is a
/// handful of scalar updates.
Counter &dummyCounter();
Histogram &dummyHistogram();

} // namespace sprof

#endif // SPROF_OBS_METRICS_H
