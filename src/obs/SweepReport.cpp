//===- obs/SweepReport.cpp - Causal sweep analysis & report ----------------===//
//
// Part of the StrideProf project (see SweepReport.h for the project
// reference).
//
//===----------------------------------------------------------------------===//

#include "obs/SweepReport.h"

#include <algorithm>
#include <numeric>

using namespace sprof;

CriticalPath sprof::computeCriticalPath(const std::vector<JobRecord> &Jobs) {
  CriticalPath CP;
  if (Jobs.empty())
    return CP;

  // Longest-path DP over the DAG. Records are stored in a topological
  // order (deps reference earlier ids), so one forward pass suffices.
  // NoPred marks a chain start.
  constexpr size_t NoPred = static_cast<size_t>(-1);
  std::vector<uint64_t> Weight(Jobs.size(), 0);
  std::vector<size_t> Pred(Jobs.size(), NoPred);
  size_t Best = 0;
  for (size_t I = 0; I != Jobs.size(); ++I) {
    uint64_t DepWeight = 0;
    size_t DepBest = NoPred;
    for (size_t Dep : Jobs[I].Deps) {
      if (Dep >= I)
        continue; // malformed edge; ignore rather than loop
      if (DepBest == NoPred || Weight[Dep] > DepWeight) {
        DepWeight = Weight[Dep];
        DepBest = Dep;
      }
    }
    Weight[I] = DepWeight + Jobs[I].DurationUs;
    Pred[I] = DepBest;
    if (Weight[I] > Weight[Best])
      Best = I;
  }

  CP.DurationUs = Weight[Best];
  for (size_t I = Best; I != NoPred; I = Pred[I])
    CP.Jobs.push_back(I);
  std::reverse(CP.Jobs.begin(), CP.Jobs.end());
  return CP;
}

JsonValue sprof::buildSweepReport(const std::vector<JobRecord> &Jobs,
                                  unsigned Threads,
                                  const SweepSchedulerStats &Sched,
                                  uint64_t WallUs, size_t TopN) {
  if (Threads == 0)
    Threads = 1;

  // Wall clock: first job ready to last job finished, unless the caller
  // measured a wider window itself.
  if (WallUs == 0 && !Jobs.empty()) {
    uint64_t MinReady = UINT64_MAX, MaxFinish = 0;
    for (const JobRecord &J : Jobs) {
      MinReady = std::min(MinReady, J.ReadyUs);
      MaxFinish = std::max(MaxFinish, J.StartUs + J.DurationUs);
    }
    WallUs = MaxFinish > MinReady ? MaxFinish - MinReady : 0;
  }

  JsonValue Root = JsonValue::object();
  Root.set("schema", SweepReportSchemaV1);
  Root.set("threads", Threads);
  Root.set("wall_us", WallUs);

  uint64_t Failed = 0;
  std::vector<uint64_t> WorkerBusy(Threads, 0);
  std::vector<uint64_t> WorkerJobs(Threads, 0);
  JsonValue JobsJson = JsonValue::array();
  for (const JobRecord &J : Jobs) {
    if (!J.Ok)
      ++Failed;
    if (J.Worker < Threads) {
      WorkerBusy[J.Worker] += J.DurationUs;
      ++WorkerJobs[J.Worker];
    }
    JsonValue JJ = JsonValue::object();
    JJ.set("id", static_cast<uint64_t>(J.Id));
    JJ.set("name", J.Name);
    JJ.set("category", J.Category);
    JsonValue Deps = JsonValue::array();
    for (size_t Dep : J.Deps)
      Deps.push(static_cast<uint64_t>(Dep));
    JJ.set("deps", std::move(Deps));
    JJ.set("worker", J.Worker);
    JJ.set("ready_us", J.ReadyUs);
    JJ.set("start_us", J.StartUs);
    JJ.set("finish_us", J.StartUs + J.DurationUs);
    JJ.set("queue_wait_us",
           J.StartUs > J.ReadyUs ? J.StartUs - J.ReadyUs : 0);
    JJ.set("run_us", J.DurationUs);
    JJ.set("ok", J.Ok);
    if (!J.Ok)
      JJ.set("error", J.Error);
    JobsJson.push(std::move(JJ));
  }
  Root.set("jobs", std::move(JobsJson));

  CriticalPath CP = computeCriticalPath(Jobs);
  JsonValue CPJson = JsonValue::object();
  JsonValue CPJobs = JsonValue::array();
  for (size_t Id : CP.Jobs)
    CPJobs.push(static_cast<uint64_t>(Id));
  CPJson.set("jobs", std::move(CPJobs));
  CPJson.set("duration_us", CP.DurationUs);
  CPJson.set("wall_us", WallUs);
  // How much of the wall clock the longest chain explains: near 1.0 means
  // adding workers cannot help; low means the pool or stragglers did.
  CPJson.set("fraction", WallUs ? static_cast<double>(CP.DurationUs) /
                                      static_cast<double>(WallUs)
                                : 0.0);
  Root.set("critical_path", std::move(CPJson));

  JsonValue SchedJson = JsonValue::object();
  SchedJson.set("queue_depth_high_water", Sched.QueueDepthHighWater);
  SchedJson.set("wakeup_retries", Sched.WakeupRetries);
  SchedJson.set("jobs_enqueued", static_cast<uint64_t>(Jobs.size()));
  SchedJson.set("jobs_started",
                static_cast<uint64_t>(Jobs.size()) - Sched.JobsSkipped);
  SchedJson.set("jobs_finished",
                static_cast<uint64_t>(Jobs.size()) - Sched.JobsSkipped);
  SchedJson.set("jobs_failed", Failed - Sched.JobsSkipped);
  SchedJson.set("jobs_skipped", Sched.JobsSkipped);

  JsonValue Workers = JsonValue::array();
  for (unsigned W = 0; W != Threads; ++W) {
    JsonValue WJ = JsonValue::object();
    WJ.set("worker", W);
    WJ.set("jobs", WorkerJobs[W]);
    WJ.set("busy_us", WorkerBusy[W]);
    WJ.set("utilization", WallUs ? static_cast<double>(WorkerBusy[W]) /
                                       static_cast<double>(WallUs)
                                 : 0.0);
    Workers.push(std::move(WJ));
  }
  SchedJson.set("workers", std::move(Workers));

  // Straggler top-N: the longest-running jobs, the first place to look
  // when utilization is poor but the critical path doesn't explain it.
  std::vector<size_t> ByRun(Jobs.size());
  std::iota(ByRun.begin(), ByRun.end(), size_t{0});
  std::stable_sort(ByRun.begin(), ByRun.end(), [&](size_t A, size_t B) {
    return Jobs[A].DurationUs > Jobs[B].DurationUs;
  });
  JsonValue Stragglers = JsonValue::array();
  for (size_t I = 0; I != ByRun.size() && I != TopN; ++I) {
    const JobRecord &J = Jobs[ByRun[I]];
    JsonValue SJ = JsonValue::object();
    SJ.set("id", static_cast<uint64_t>(J.Id));
    SJ.set("name", J.Name);
    SJ.set("run_us", J.DurationUs);
    SJ.set("queue_wait_us",
           J.StartUs > J.ReadyUs ? J.StartUs - J.ReadyUs : 0);
    Stragglers.push(std::move(SJ));
  }
  SchedJson.set("stragglers", std::move(Stragglers));
  Root.set("scheduler", std::move(SchedJson));
  return Root;
}
