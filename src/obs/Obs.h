//===- obs/Obs.h - Observability configuration and session ------*- C++ -*-===//
//
// Part of the StrideProf project, a reproduction of Youfeng Wu, "Efficient
// Discovery of Regular Stride Patterns in Irregular Programs and Its Use in
// Compiler Prefetching" (PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ties the observability layer together: ObsConfig is the knob block the
/// pipeline configuration embeds, ObsSession owns one run's metrics
/// registry and trace collector. Producers receive an `ObsSession *` that
/// is nullptr when telemetry is disabled, so the disabled path costs one
/// pointer test at instrumentation-attach time and nothing per event.
///
//===----------------------------------------------------------------------===//

#ifndef SPROF_OBS_OBS_H
#define SPROF_OBS_OBS_H

#include "obs/Metrics.h"
#include "obs/Trace.h"

#include <string>
#include <vector>

namespace sprof {

/// Everything configurable about telemetry collection.
struct ObsConfig {
  /// Master switch; off reproduces the seed pipeline bit for bit.
  bool Enabled = false;

  /// Collect counters/gauges/histograms.
  bool CollectMetrics = true;

  /// Collect phase trace spans.
  bool CollectTrace = true;

  /// Trace verbosity: 0 = nothing, 1 = pipeline phases (instrument,
  /// execute, classify, prefetch-insert, ...), 2 = fine-grained spans
  /// inside the phases.
  unsigned TraceDetail = 1;

  /// When non-empty, ObsSession::writeArtifacts dumps the Chrome trace
  /// here.
  std::string TraceOutputPath;

  /// When non-empty, report writers (examples, benches) put the JSON run
  /// report here.
  std::string ReportOutputPath;
};

/// Telemetry summary of one engine job: what ran, when, on which worker,
/// whether it succeeded, and the job's own metric scope. Jobs execute
/// against a private ObsSession; the engine folds the result into the
/// session-level registry/trace and records one of these so the run
/// report can emit a per-job breakdown ("jobs" array).
struct JobRecord {
  std::string Name;
  std::string Category; ///< "run-job", "feedback-job", ...
  uint64_t StartUs = 0; ///< on the session collector's clock
  uint64_t DurationUs = 0;
  uint32_t Worker = 0; ///< thread-pool worker index (trace track)
  bool Ok = true;
  std::string Error; ///< exception text when !Ok
  MetricsRegistry Metrics; ///< the job's isolated metric scope
};

/// One telemetry session: typically one per Pipeline or per
/// ExperimentEngine, spanning all the runs it drives.
class ObsSession {
public:
  explicit ObsSession(ObsConfig Config) : Config(std::move(Config)) {}

  const ObsConfig &config() const { return Config; }

  MetricsRegistry &registry() { return Registry; }
  const MetricsRegistry &registry() const { return Registry; }
  TraceCollector &trace() { return Trace; }
  const TraceCollector &trace() const { return Trace; }

  /// Metric handles for producers: nullptr when metric collection is off,
  /// so hot paths can gate on a single cached pointer.
  Counter *counter(std::string_view Name) {
    return Config.CollectMetrics ? &Registry.counter(Name) : nullptr;
  }
  Gauge *gauge(std::string_view Name) {
    return Config.CollectMetrics ? &Registry.gauge(Name) : nullptr;
  }
  Histogram *histogram(std::string_view Name,
                       std::vector<uint64_t> UpperBounds = {}) {
    return Config.CollectMetrics
               ? &Registry.histogram(Name, std::move(UpperBounds))
               : nullptr;
  }

  /// The trace collector if spans at \p Level should be recorded, else
  /// nullptr (used by TraceSpan's session constructor).
  TraceCollector *traceAtLevel(unsigned Level) {
    return Config.CollectTrace && Level <= Config.TraceDetail ? &Trace
                                                              : nullptr;
  }

  /// Configuration for a job-scoped child session: same collection
  /// switches, no output paths (the parent session owns the artifacts).
  ObsConfig jobConfig() const {
    ObsConfig C = Config;
    C.TraceOutputPath.clear();
    C.ReportOutputPath.clear();
    return C;
  }

  /// Appends one finished job's record. Single-threaded like the rest of
  /// the session; the engine serializes calls under its own lock.
  void recordJob(JobRecord Record) { Jobs.push_back(std::move(Record)); }
  const std::vector<JobRecord> &jobs() const { return Jobs; }

  /// Writes the Chrome trace to Config.TraceOutputPath when set. Returns
  /// false only on an I/O failure.
  bool writeArtifacts() const {
    if (Config.TraceOutputPath.empty())
      return true;
    return Trace.writeChromeTraceFile(Config.TraceOutputPath);
  }

private:
  ObsConfig Config;
  MetricsRegistry Registry;
  TraceCollector Trace;
  std::vector<JobRecord> Jobs;
};

} // namespace sprof

#endif // SPROF_OBS_OBS_H
