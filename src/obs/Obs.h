//===- obs/Obs.h - Observability configuration and session ------*- C++ -*-===//
//
// Part of the StrideProf project, a reproduction of Youfeng Wu, "Efficient
// Discovery of Regular Stride Patterns in Irregular Programs and Its Use in
// Compiler Prefetching" (PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ties the observability layer together: ObsConfig is the knob block the
/// pipeline configuration embeds, ObsSession owns one run's metrics
/// registry and trace collector. Producers receive an `ObsSession *` that
/// is nullptr when telemetry is disabled, so the disabled path costs one
/// pointer test at instrumentation-attach time and nothing per event.
///
//===----------------------------------------------------------------------===//

#ifndef SPROF_OBS_OBS_H
#define SPROF_OBS_OBS_H

#include "obs/Metrics.h"
#include "obs/Trace.h"

#include <string>

namespace sprof {

/// Everything configurable about telemetry collection.
struct ObsConfig {
  /// Master switch; off reproduces the seed pipeline bit for bit.
  bool Enabled = false;

  /// Collect counters/gauges/histograms.
  bool CollectMetrics = true;

  /// Collect phase trace spans.
  bool CollectTrace = true;

  /// Trace verbosity: 0 = nothing, 1 = pipeline phases (instrument,
  /// execute, classify, prefetch-insert, ...), 2 = fine-grained spans
  /// inside the phases.
  unsigned TraceDetail = 1;

  /// When non-empty, ObsSession::writeArtifacts dumps the Chrome trace
  /// here.
  std::string TraceOutputPath;

  /// When non-empty, report writers (examples, benches) put the JSON run
  /// report here.
  std::string ReportOutputPath;
};

/// One telemetry session: typically one per Pipeline, spanning all the runs
/// that pipeline drives.
class ObsSession {
public:
  explicit ObsSession(ObsConfig Config) : Config(std::move(Config)) {}

  const ObsConfig &config() const { return Config; }

  MetricsRegistry &registry() { return Registry; }
  const MetricsRegistry &registry() const { return Registry; }
  TraceCollector &trace() { return Trace; }
  const TraceCollector &trace() const { return Trace; }

  /// Metric handles for producers: nullptr when metric collection is off,
  /// so hot paths can gate on a single cached pointer.
  Counter *counter(std::string_view Name) {
    return Config.CollectMetrics ? &Registry.counter(Name) : nullptr;
  }
  Gauge *gauge(std::string_view Name) {
    return Config.CollectMetrics ? &Registry.gauge(Name) : nullptr;
  }
  Histogram *histogram(std::string_view Name,
                       std::vector<uint64_t> UpperBounds = {}) {
    return Config.CollectMetrics
               ? &Registry.histogram(Name, std::move(UpperBounds))
               : nullptr;
  }

  /// The trace collector if spans at \p Level should be recorded, else
  /// nullptr (used by TraceSpan's session constructor).
  TraceCollector *traceAtLevel(unsigned Level) {
    return Config.CollectTrace && Level <= Config.TraceDetail ? &Trace
                                                              : nullptr;
  }

  /// Writes the Chrome trace to Config.TraceOutputPath when set. Returns
  /// false only on an I/O failure.
  bool writeArtifacts() const {
    if (Config.TraceOutputPath.empty())
      return true;
    return Trace.writeChromeTraceFile(Config.TraceOutputPath);
  }

private:
  ObsConfig Config;
  MetricsRegistry Registry;
  TraceCollector Trace;
};

} // namespace sprof

#endif // SPROF_OBS_OBS_H
