//===- obs/Obs.h - Observability configuration and session ------*- C++ -*-===//
//
// Part of the StrideProf project, a reproduction of Youfeng Wu, "Efficient
// Discovery of Regular Stride Patterns in Irregular Programs and Its Use in
// Compiler Prefetching" (PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ties the observability layer together: ObsConfig is the knob block the
/// pipeline configuration embeds, ObsSession owns one run's metrics
/// registry and trace collector. Producers receive an `ObsSession *` that
/// is nullptr when telemetry is disabled, so the disabled path costs one
/// pointer test at instrumentation-attach time and nothing per event.
///
//===----------------------------------------------------------------------===//

#ifndef SPROF_OBS_OBS_H
#define SPROF_OBS_OBS_H

#include "obs/Metrics.h"
#include "obs/Trace.h"

#include <memory>
#include <string>
#include <vector>

namespace sprof {

class TelemetrySampler;
class EngineSelfProfiler;

/// Everything configurable about telemetry collection.
struct ObsConfig {
  /// Master switch; off reproduces the seed pipeline bit for bit.
  bool Enabled = false;

  /// Collect counters/gauges/histograms.
  bool CollectMetrics = true;

  /// Collect phase trace spans.
  bool CollectTrace = true;

  /// Trace verbosity: 0 = nothing, 1 = pipeline phases (instrument,
  /// execute, classify, prefetch-insert, ...), 2 = fine-grained spans
  /// inside the phases.
  unsigned TraceDetail = 1;

  /// When nonzero (and metrics are on), the session runs a background
  /// TelemetrySampler that snapshots every counter/gauge at this interval
  /// into a bounded time-series ring.
  uint64_t SampleIntervalUs = 0;

  /// Ring capacity of the sampler (oldest snapshots drop when full).
  size_t SampleRingCapacity = 512;

  /// When non-empty, writeArtifacts dumps the "sprof.timeseries/1"
  /// document here (requires SampleIntervalUs > 0).
  std::string TimeSeriesOutputPath;

  /// Run the decoded engine's window-sampled self-profiler (per-opcode /
  /// per-superinstruction / per-phase host-cycle attribution).
  bool SelfProfile = false;

  /// Self-profiler sampling window in dispatches.
  uint32_t SelfProfileWindow = 1024;

  /// When non-empty, writeArtifacts dumps the self-profiler's folded-stack
  /// lines ("workload;phase;op count") here for flamegraph.pl/speedscope.
  std::string FoldedProfilePath;

  /// When non-empty, ObsSession::writeArtifacts dumps the Chrome trace
  /// here.
  std::string TraceOutputPath;

  /// When non-empty, report writers (examples, benches) put the JSON run
  /// report here.
  std::string ReportOutputPath;

  /// When non-empty, ExperimentEngine::writeArtifacts dumps the
  /// "sprof.sweep_report/1" document (per-job causal timeline, critical
  /// path, scheduler section) here.
  std::string SweepReportOutputPath;

  /// Arm the engine flight recorder: a bounded lock-free per-worker ring
  /// of job/phase transitions that a SIGSEGV/SIGABRT handler (and the
  /// engine watchdog) dumps as JSON, so a crashed or hung sweep leaves a
  /// post-mortem naming the jobs in flight.
  bool FlightRecorder = false;

  /// Events retained per worker lane (rounded up to a power of two).
  size_t FlightRecorderRingSize = 64;

  /// Where the flight recorder dumps ("sprof.flightrec/1"); empty means
  /// stderr.
  std::string FlightRecorderDumpPath;

  /// Install the fatal-signal (SIGSEGV/SIGABRT) dump handler. Off leaves
  /// signal dispositions alone; the watchdog and explicit dumps still
  /// work.
  bool FlightRecorderSignals = true;
};

/// Telemetry summary of one engine job: what ran, when, on which worker,
/// whether it succeeded, and the job's own metric scope. Jobs execute
/// against a private ObsSession; the engine folds the result into the
/// session-level registry/trace and records one of these so the run
/// report can emit a per-job breakdown ("jobs" array).
struct JobRecord {
  /// Session-wide job index (position in ObsSession::jobs()). Deps refer
  /// to these ids, staying valid across the engine's multiple graph
  /// drains within one session.
  size_t Id = 0;
  std::string Name;
  std::string Category; ///< "run-job", "feedback-job", ...
  std::vector<size_t> Deps; ///< job-graph dependency edges, as Ids
  /// When the job became runnable (dependencies done), on the session
  /// collector's clock. StartUs - ReadyUs is the queue wait.
  uint64_t ReadyUs = 0;
  uint64_t StartUs = 0; ///< on the session collector's clock
  uint64_t DurationUs = 0;
  uint32_t Worker = 0; ///< thread-pool worker index (trace track)
  bool Ok = true;
  std::string Error; ///< exception text when !Ok
  MetricsRegistry Metrics; ///< the job's isolated metric scope
};

/// One telemetry session: typically one per Pipeline or per
/// ExperimentEngine, spanning all the runs it drives.
class ObsSession {
public:
  /// Starts the background sampler when Config enables it
  /// (SampleIntervalUs > 0 with metrics on) and creates the engine
  /// self-profiler when Config.SelfProfile is set.
  explicit ObsSession(ObsConfig Config);
  ~ObsSession();

  ObsSession(const ObsSession &) = delete;
  ObsSession &operator=(const ObsSession &) = delete;

  const ObsConfig &config() const { return Config; }

  MetricsRegistry &registry() { return Registry; }
  const MetricsRegistry &registry() const { return Registry; }
  TraceCollector &trace() { return Trace; }
  const TraceCollector &trace() const { return Trace; }

  /// Metric handles for producers: nullptr when metric collection is off,
  /// so hot paths can gate on a single cached pointer.
  Counter *counter(std::string_view Name) {
    return Config.CollectMetrics ? &Registry.counter(Name) : nullptr;
  }
  Gauge *gauge(std::string_view Name) {
    return Config.CollectMetrics ? &Registry.gauge(Name) : nullptr;
  }
  Histogram *histogram(std::string_view Name,
                       std::vector<uint64_t> UpperBounds = {}) {
    return Config.CollectMetrics
               ? &Registry.histogram(Name, std::move(UpperBounds))
               : nullptr;
  }

  /// The trace collector if spans at \p Level should be recorded, else
  /// nullptr (used by TraceSpan's session constructor).
  TraceCollector *traceAtLevel(unsigned Level) {
    return Config.CollectTrace && Level <= Config.TraceDetail ? &Trace
                                                              : nullptr;
  }

  /// The background sampler, or nullptr when not configured. Ring
  /// accessors are valid after stopSampling()/writeArtifacts().
  TelemetrySampler *sampler() { return Sampler.get(); }
  const TelemetrySampler *sampler() const { return Sampler.get(); }

  /// Stops the sampler (taking its final synchronized snapshot) if it is
  /// running. Idempotent; call after producers quiesce.
  void stopSampling();

  /// The engine self-profiler, or nullptr when Config.SelfProfile is off.
  /// Interpreter::attachObs resolves this, so enabling the knob is all a
  /// caller needs to do.
  EngineSelfProfiler *selfProfiler() { return SelfProf.get(); }
  const EngineSelfProfiler *selfProfiler() const { return SelfProf.get(); }

  /// Configuration for a job-scoped child session: same collection
  /// switches, no output paths (the parent session owns the artifacts),
  /// and no sampler thread (jobs are short-lived; the parent samples the
  /// folded session registry instead).
  ObsConfig jobConfig() const {
    ObsConfig C = Config;
    C.TraceOutputPath.clear();
    C.ReportOutputPath.clear();
    C.TimeSeriesOutputPath.clear();
    C.FoldedProfilePath.clear();
    C.SweepReportOutputPath.clear();
    C.SampleIntervalUs = 0;
    // The flight recorder is engine-owned: one recorder per engine, never
    // one per job session.
    C.FlightRecorder = false;
    C.FlightRecorderDumpPath.clear();
    return C;
  }

  /// Appends one finished job's record. Single-threaded like the rest of
  /// the session; the engine serializes calls under its own lock.
  void recordJob(JobRecord Record) { Jobs.push_back(std::move(Record)); }
  const std::vector<JobRecord> &jobs() const { return Jobs; }

  /// Writes every configured artifact: stops the sampler, folds its ring
  /// into the trace as counter events, then writes the Chrome trace
  /// (TraceOutputPath), the time-series document (TimeSeriesOutputPath),
  /// and the folded self-profile (FoldedProfilePath) -- each only when its
  /// path is set. Returns false only on an I/O failure.
  bool writeArtifacts();

private:
  ObsConfig Config;
  MetricsRegistry Registry;
  TraceCollector Trace;
  std::vector<JobRecord> Jobs;
  std::unique_ptr<TelemetrySampler> Sampler;
  std::unique_ptr<EngineSelfProfiler> SelfProf;
  bool CounterSamplesFolded = false;
};

} // namespace sprof

#endif // SPROF_OBS_OBS_H
