//===- obs/FlightRecorder.h - Crash/hang post-mortem ring -------*- C++ -*-===//
//
// Part of the StrideProf project, a reproduction of Youfeng Wu, "Efficient
// Discovery of Regular Stride Patterns in Irregular Programs and Its Use in
// Compiler Prefetching" (PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded, lock-free, per-worker ring of structured events (job
/// transitions, phase enters) that survives the sweep it observes: a
/// fatal-signal handler (SIGSEGV/SIGABRT) or the engine watchdog dumps it
/// as a "sprof.flightrec/1" JSON document, so a crashed or hung sweep
/// leaves a post-mortem naming the exact jobs in flight and the last
/// phases they entered.
///
/// Concurrency model: each worker lane has exactly one writer (the worker
/// thread the engine bound to it), so recording is wait-free — a
/// monotonic head counter plus a per-slot sequence guard (odd while the
/// slot is being written, even when stable). Readers (the signal handler,
/// possibly interrupting a write on the same thread; the watchdog on its
/// own thread) skip slots whose sequence is odd or changes under them.
/// The dump path allocates nothing and calls only async-signal-safe
/// functions (write, open, clock_gettime), formatting numbers by hand.
///
/// Event names are truncated into fixed char buffers — a post-mortem that
/// loses the tail of a long job name beats one that deadlocks in malloc.
///
//===----------------------------------------------------------------------===//

#ifndef SPROF_OBS_FLIGHTRECORDER_H
#define SPROF_OBS_FLIGHTRECORDER_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace sprof {

/// Schema identifier stamped into every flight-recorder dump.
inline constexpr const char *FlightRecSchemaV1 = "sprof.flightrec/1";

/// What a flight-recorder event records.
enum class FlightEventKind : uint8_t {
  JobStart = 1,
  JobFinish = 2,
  JobFail = 3,
  Phase = 4, ///< pipeline phase span opened (instrument, execute, ...)
  Mark = 5,  ///< freeform caller annotation
};

const char *flightEventKindName(FlightEventKind Kind);

class FlightRecorder {
public:
  /// Capacity of the fixed name/detail buffers (including NUL).
  static constexpr size_t NameCap = 64;
  static constexpr size_t DetailCap = 48;

  /// Exit status of a watchdog-terminated process; distinctive so CI can
  /// tell "hung and dumped" from ordinary failure.
  static constexpr int WatchdogExitCode = 42;

  /// \p Workers lanes, each retaining the last \p RingSize events
  /// (rounded up to a power of two, minimum 8).
  FlightRecorder(unsigned Workers, size_t RingSize);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder &) = delete;
  FlightRecorder &operator=(const FlightRecorder &) = delete;

  unsigned workers() const { return static_cast<unsigned>(Lanes.size()); }

  /// Binds the calling thread to \p Worker's lane so notePhase() from
  /// inside job code lands on the right ring. The engine's job wrapper
  /// binds around each job; unbindThread() clears the association.
  void bindThread(uint32_t Worker);
  static void unbindThread();

  /// Records a phase enter on the calling thread's bound lane; no-op on
  /// unbound threads. Hooked into TraceCollector::beginSpan, so armed
  /// sweeps record phases with no producer changes.
  static void notePhase(const char *Name);
  static void notePhase(std::string_view Name); ///< bounded-copy variant

  /// Job transitions, recorded by the engine's wrapper. \p Detail is the
  /// job category (run-job, feedback-job, ...). jobFinish also feeds the
  /// watchdog heartbeat.
  void jobStart(uint32_t Worker, const char *Name, const char *Detail);
  void jobFinish(uint32_t Worker, const char *Name, bool Ok);

  /// Freeform annotation on an explicit lane.
  void mark(uint32_t Worker, const char *Name, const char *Detail);

  /// Async-signal-safe dump of every lane as "sprof.flightrec/1" JSON to
  /// \p Fd. \p Reason lands in the document ("signal:SIGSEGV",
  /// "watchdog", "request"). Returns false when a write failed.
  bool dumpFd(int Fd, const char *Reason) const;

  /// dumpFd to \p Path (O_CREAT|O_TRUNC); empty path means stderr.
  bool dumpFile(const char *Path, const char *Reason) const;

  /// Arms the process-wide SIGSEGV/SIGABRT handler to dump THIS recorder
  /// to \p Path (empty = stderr) before re-raising with the default
  /// disposition. One recorder owns the handler at a time; the last call
  /// wins, and the destructor disarms itself.
  void installSignalDump(const std::string &Path);

  /// Starts the watchdog: a thread that dumps to \p Path (empty = stderr)
  /// and calls _exit(WatchdogExitCode) when no job finishes for
  /// \p TimeoutSec seconds while at least one job is in flight. Stopped
  /// (joined) by stopWatchdog()/destructor.
  void startWatchdog(uint64_t TimeoutSec, const std::string &Path);
  void stopWatchdog();

  /// Resets the watchdog countdown; called on every job finish.
  void heartbeat();

  /// Microseconds since the recorder was created (monotonic clock).
  uint64_t nowUs() const;

private:
  struct Slot {
    std::atomic<uint64_t> Seq{0}; ///< odd while mid-write
    uint64_t TsUs = 0;
    FlightEventKind Kind = FlightEventKind::Mark;
    bool Ok = true;
    char Name[NameCap] = {0};
    char Detail[DetailCap] = {0};
  };

  struct Lane {
    std::atomic<uint64_t> Head{0}; ///< events ever recorded on this lane
    std::atomic<bool> InFlight{false};
    /// Last job started on the lane; guarded by JobSeq like a slot.
    std::atomic<uint64_t> JobSeq{0};
    char CurrentJob[NameCap] = {0};
    std::vector<Slot> Ring;
  };

  void record(uint32_t Worker, FlightEventKind Kind, const char *Name,
              const char *Detail, bool Ok);

  std::vector<Lane> Lanes;
  size_t RingMask = 0;
  uint64_t EpochNs = 0;
  char SignalDumpPath[512] = {0};

  std::atomic<uint64_t> LastFinishUs{0};
  std::thread Watchdog;
  std::mutex WatchdogMu;
  std::condition_variable WatchdogCv;
  bool WatchdogStop = false;
};

} // namespace sprof

#endif // SPROF_OBS_FLIGHTRECORDER_H
