//===- obs/Json.cpp - Minimal JSON value model, writer, parser -------------===//
//
// Part of the StrideProf project (see Json.h for the project reference).
//
//===----------------------------------------------------------------------===//

#include "obs/Json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>

using namespace sprof;

JsonValue &JsonValue::set(std::string_view Key, JsonValue V) {
  for (auto &[Name, Value] : Members)
    if (Name == Key) {
      Value = std::move(V);
      return *this;
    }
  Members.emplace_back(std::string(Key), std::move(V));
  return *this;
}

const JsonValue *JsonValue::get(std::string_view Key) const {
  for (const auto &[Name, Value] : Members)
    if (Name == Key)
      return &Value;
  return nullptr;
}

namespace {

void writeEscaped(std::ostream &OS, const std::string &S) {
  OS << '"';
  for (char C : S) {
    switch (C) {
    case '"':
      OS << "\\\"";
      break;
    case '\\':
      OS << "\\\\";
      break;
    case '\b':
      OS << "\\b";
      break;
    case '\f':
      OS << "\\f";
      break;
    case '\n':
      OS << "\\n";
      break;
    case '\r':
      OS << "\\r";
      break;
    case '\t':
      OS << "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        OS << Buf;
      } else {
        OS << C;
      }
    }
  }
  OS << '"';
}

void writeNewlineIndent(std::ostream &OS, unsigned Indent, unsigned Depth) {
  if (Indent == 0)
    return;
  OS << '\n';
  for (unsigned I = 0; I != Indent * Depth; ++I)
    OS << ' ';
}

} // namespace

void JsonValue::writeImpl(std::ostream &OS, unsigned Indent,
                          unsigned Depth) const {
  switch (K) {
  case Kind::Null:
    OS << "null";
    break;
  case Kind::Bool:
    OS << (B ? "true" : "false");
    break;
  case Kind::Int:
    OS << I;
    break;
  case Kind::Double: {
    if (!std::isfinite(D)) {
      // JSON has no Inf/NaN; emit null like most tolerant writers.
      OS << "null";
      break;
    }
    char Buf[40];
    std::snprintf(Buf, sizeof(Buf), "%.17g", D);
    OS << Buf;
    break;
  }
  case Kind::String:
    writeEscaped(OS, S);
    break;
  case Kind::Array: {
    if (Items.empty()) {
      OS << "[]";
      break;
    }
    OS << '[';
    for (size_t Idx = 0; Idx != Items.size(); ++Idx) {
      if (Idx)
        OS << ',';
      writeNewlineIndent(OS, Indent, Depth + 1);
      Items[Idx].writeImpl(OS, Indent, Depth + 1);
    }
    writeNewlineIndent(OS, Indent, Depth);
    OS << ']';
    break;
  }
  case Kind::Object: {
    if (Members.empty()) {
      OS << "{}";
      break;
    }
    OS << '{';
    for (size_t Idx = 0; Idx != Members.size(); ++Idx) {
      if (Idx)
        OS << ',';
      writeNewlineIndent(OS, Indent, Depth + 1);
      writeEscaped(OS, Members[Idx].first);
      OS << (Indent ? ": " : ":");
      Members[Idx].second.writeImpl(OS, Indent, Depth + 1);
    }
    writeNewlineIndent(OS, Indent, Depth);
    OS << '}';
    break;
  }
  }
}

void JsonValue::write(std::ostream &OS, unsigned Indent) const {
  writeImpl(OS, Indent, 0);
}

std::string JsonValue::str(unsigned Indent) const {
  std::ostringstream OS;
  write(OS, Indent);
  return OS.str();
}

namespace {

/// Recursive-descent JSON parser over a string_view.
class Parser {
public:
  Parser(std::string_view Text, std::string *Error)
      : Text(Text), Error(Error) {}

  bool run(JsonValue &Out) {
    if (!parseValue(Out))
      return false;
    skipSpace();
    if (Pos != Text.size())
      return fail("trailing characters after value");
    return true;
  }

private:
  bool fail(const char *Message) {
    if (Error) {
      std::ostringstream OS;
      OS << Message << " at offset " << Pos;
      *Error = OS.str();
    }
    return false;
  }

  void skipSpace() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    skipSpace();
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool literal(std::string_view Word) {
    if (Text.substr(Pos, Word.size()) != Word)
      return false;
    Pos += Word.size();
    return true;
  }

  bool parseValue(JsonValue &Out) {
    skipSpace();
    if (Pos == Text.size())
      return fail("unexpected end of input");
    char C = Text[Pos];
    if (C == '{')
      return parseObject(Out);
    if (C == '[')
      return parseArray(Out);
    if (C == '"') {
      std::string S;
      if (!parseString(S))
        return false;
      Out = JsonValue(std::move(S));
      return true;
    }
    if (literal("null")) {
      Out = JsonValue();
      return true;
    }
    if (literal("true")) {
      Out = JsonValue(true);
      return true;
    }
    if (literal("false")) {
      Out = JsonValue(false);
      return true;
    }
    return parseNumber(Out);
  }

  bool parseObject(JsonValue &Out) {
    ++Pos; // '{'
    Out = JsonValue::object();
    skipSpace();
    if (consume('}'))
      return true;
    for (;;) {
      skipSpace();
      std::string Key;
      if (Pos == Text.size() || Text[Pos] != '"' || !parseString(Key))
        return fail("expected object key");
      if (!consume(':'))
        return fail("expected ':' after object key");
      JsonValue V;
      if (!parseValue(V))
        return false;
      Out.set(Key, std::move(V));
      if (consume(','))
        continue;
      if (consume('}'))
        return true;
      return fail("expected ',' or '}' in object");
    }
  }

  bool parseArray(JsonValue &Out) {
    ++Pos; // '['
    Out = JsonValue::array();
    if (consume(']'))
      return true;
    for (;;) {
      JsonValue V;
      if (!parseValue(V))
        return false;
      Out.push(std::move(V));
      if (consume(','))
        continue;
      if (consume(']'))
        return true;
      return fail("expected ',' or ']' in array");
    }
  }

  bool parseString(std::string &Out) {
    ++Pos; // opening quote
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return true;
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos == Text.size())
        break;
      char E = Text[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        Out += E;
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return fail("truncated \\u escape");
        unsigned Code = 0;
        for (int Hex = 0; Hex != 4; ++Hex) {
          char H = Text[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code |= static_cast<unsigned>(H - 'A' + 10);
          else
            return fail("bad hex digit in \\u escape");
        }
        // UTF-8 encode (BMP only; surrogate pairs are passed through as
        // two separately-encoded code units, which our writer never emits).
        if (Code < 0x80) {
          Out += static_cast<char>(Code);
        } else if (Code < 0x800) {
          Out += static_cast<char>(0xC0 | (Code >> 6));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        } else {
          Out += static_cast<char>(0xE0 | (Code >> 12));
          Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        }
        break;
      }
      default:
        return fail("unknown escape character");
      }
    }
    return fail("unterminated string");
  }

  bool parseNumber(JsonValue &Out) {
    size_t Start = Pos;
    bool IsDouble = false;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (std::isdigit(static_cast<unsigned char>(C))) {
        ++Pos;
      } else if (C == '.' || C == 'e' || C == 'E' || C == '+' || C == '-') {
        IsDouble = true;
        ++Pos;
      } else {
        break;
      }
    }
    if (Pos == Start)
      return fail("expected a value");
    std::string Num(Text.substr(Start, Pos - Start));
    char *End = nullptr;
    if (!IsDouble) {
      long long V = std::strtoll(Num.c_str(), &End, 10);
      if (End == Num.c_str() + Num.size()) {
        Out = JsonValue(static_cast<int64_t>(V));
        return true;
      }
    }
    double V = std::strtod(Num.c_str(), &End);
    if (End != Num.c_str() + Num.size())
      return fail("malformed number");
    Out = JsonValue(V);
    return true;
  }

  std::string_view Text;
  std::string *Error;
  size_t Pos = 0;
};

} // namespace

bool JsonValue::parse(std::string_view Text, JsonValue &Out,
                      std::string *Error) {
  return Parser(Text, Error).run(Out);
}

bool sprof::writeJsonFile(const std::string &Path, const JsonValue &V) {
  std::ofstream OS(Path);
  if (!OS)
    return false;
  V.write(OS);
  OS << '\n';
  return static_cast<bool>(OS);
}
