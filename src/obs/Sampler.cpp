//===- obs/Sampler.cpp - Background time-series metric sampler -------------===//
//
// Part of the StrideProf project (see Sampler.h for the project reference).
//
//===----------------------------------------------------------------------===//

#include "obs/Sampler.h"

#include <chrono>
#include <map>

using namespace sprof;

TelemetrySampler::TelemetrySampler(const MetricsRegistry &Registry,
                                   const TraceCollector &Clock,
                                   uint64_t IntervalUs, size_t RingCapacity)
    : Registry(Registry), Clock(Clock), IntervalUs(IntervalUs),
      RingCapacity(RingCapacity < 2 ? 2 : RingCapacity) {}

TelemetrySampler::~TelemetrySampler() { stop(); }

void TelemetrySampler::start() {
  if (Thr.joinable() || Stopped)
    return;
  StopRequested = false;
  Thr = std::thread([this] { threadMain(); });
}

void TelemetrySampler::stop() {
  if (Thr.joinable()) {
    {
      std::lock_guard<std::mutex> L(Mu);
      StopRequested = true;
    }
    Cv.notify_all();
    Thr.join();
  }
  if (!Stopped) {
    Stopped = true;
    // The final snapshot: taken after the sampler thread has joined and
    // (by the caller's contract) after producers quiesced, so it equals
    // the registry's end-of-run totals exactly.
    takeSample();
  }
}

void TelemetrySampler::threadMain() {
  std::unique_lock<std::mutex> L(Mu);
  for (;;) {
    if (Cv.wait_for(L, std::chrono::microseconds(IntervalUs),
                    [this] { return StopRequested; }))
      return; // the final snapshot happens in stop(), post-join
    L.unlock();
    takeSample();
    L.lock();
  }
}

void TelemetrySampler::takeSample() {
  TimeSeriesSample S;
  S.TsUs = Clock.nowUs();
  Registry.snapshotScalars(S.Counters, S.Gauges);
  std::lock_guard<std::mutex> L(Mu);
  if (Ring.size() == RingCapacity)
    Ring.pop_front();
  Ring.push_back(std::move(S));
  ++Taken;
}

JsonValue sprof::timeSeriesToJson(const TelemetrySampler &Sampler) {
  const auto &Samples = Sampler.samples();

  // Union of metric names over the whole ring; a metric discovered mid-run
  // is back-filled with zero for earlier samples.
  std::map<std::string, std::vector<uint64_t>> CounterSeries;
  std::map<std::string, std::vector<double>> GaugeSeries;
  size_t Idx = 0;
  for (const auto &S : Samples) {
    for (const auto &[Name, V] : S.Counters) {
      auto &Series = CounterSeries[Name];
      Series.resize(Idx, 0);
      Series.push_back(V);
    }
    for (const auto &[Name, V] : S.Gauges) {
      auto &Series = GaugeSeries[Name];
      Series.resize(Idx, 0.0);
      Series.push_back(V);
    }
    ++Idx;
  }
  for (auto &[Name, Series] : CounterSeries)
    Series.resize(Samples.size(), 0);
  for (auto &[Name, Series] : GaugeSeries)
    Series.resize(Samples.size(), 0.0);

  JsonValue J = JsonValue::object();
  J.set("schema", TimeSeriesSchemaV1);
  J.set("interval_us", Sampler.intervalUs());
  J.set("ring_capacity", static_cast<uint64_t>(Sampler.ringCapacity()));
  J.set("samples_taken", Sampler.samplesTaken());
  J.set("dropped", Sampler.dropped());

  JsonValue Ts = JsonValue::array();
  for (const auto &S : Samples)
    Ts.push(S.TsUs);
  J.set("timestamps_us", std::move(Ts));

  JsonValue Counters = JsonValue::object();
  for (const auto &[Name, Series] : CounterSeries) {
    JsonValue Vals = JsonValue::array();
    for (uint64_t V : Series)
      Vals.push(V);
    Counters.set(Name, std::move(Vals));
  }
  J.set("counters", std::move(Counters));

  JsonValue Gauges = JsonValue::object();
  for (const auto &[Name, Series] : GaugeSeries) {
    JsonValue Vals = JsonValue::array();
    for (double V : Series)
      Vals.push(V);
    Gauges.set(Name, std::move(Vals));
  }
  J.set("gauges", std::move(Gauges));
  return J;
}
