//===- obs/Report.h - Machine-readable run reports --------------*- C++ -*-===//
//
// Part of the StrideProf project, a reproduction of Youfeng Wu, "Efficient
// Discovery of Regular Stride Patterns in Irregular Programs and Its Use in
// Compiler Prefetching" (PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serializes pipeline results as stable-schema JSON so experiments leave a
/// machine-readable trail next to the pretty-printed tables: edge-profile
/// summaries, per-load-site stride top-N tables, zero/zero-stride-diff
/// counts, classification verdicts with the configured thresholds, sampling
/// configuration, and every metric in an ObsSession's registry.
///
/// The top-level document is versioned ("sprof.run_report/5"); consumers
/// (scripts/check_telemetry_schema.sh, tests/test_obs.cpp, sprof-inspect)
/// validate against that schema string. Each version is a strict superset
/// of the previous one: /2 added the optional "attribution" and
/// "profile_diff" sections, /3 the optional "self_profile" section (the
/// engine's window-sampled per-dispatch-op attribution), /4 the optional
/// "profile_run.trace" section (accounting of the sprof.trace capture a
/// profile run recorded), /5 adds the optional "trace_tier" section in
/// profile_run/timed_run (hot-trace selection and execution accounting of
/// runs under the Trace engine), so an older reader that ignores unknown
/// keys parses newer documents unchanged.
///
//===----------------------------------------------------------------------===//

#ifndef SPROF_OBS_REPORT_H
#define SPROF_OBS_REPORT_H

#include "driver/Pipeline.h"
#include "obs/Json.h"
#include "obs/Obs.h"
#include "profile/ProfileDiff.h"

#include <iosfwd>
#include <string>

namespace sprof {

/// Schema identifier of reports written before prefetch-outcome
/// attribution existed; still accepted by every reader.
inline constexpr const char *RunReportSchemaV1 = "sprof.run_report/1";

/// Schema identifier of reports written before the engine self-profile
/// section existed; still accepted by every reader.
inline constexpr const char *RunReportSchemaV2 = "sprof.run_report/2";

/// Schema identifier of reports written before the trace-capture section
/// existed; still accepted by every reader.
inline constexpr const char *RunReportSchemaV3 = "sprof.run_report/3";

/// Schema identifier of reports written before the trace-tier section
/// existed; still accepted by every reader.
inline constexpr const char *RunReportSchemaV4 = "sprof.run_report/4";

/// Schema identifier stamped into every run report.
inline constexpr const char *RunReportSchemaV5 = "sprof.run_report/5";

/// Shaping knobs for the per-site sections.
struct ReportOptions {
  /// Top strides emitted per load site (the paper's classifier reads 4).
  unsigned TopStridesPerSite = 4;
  /// Skip sites with no observed strides (never-profiled or never-hit).
  bool OnlyActiveSites = true;
};

// -- Section builders (each returns one JSON object) ----------------------
JsonValue runStatsToJson(const RunStats &Stats);
JsonValue memoryStatsToJson(const MemoryStats &Stats);
JsonValue edgeProfileToJson(const EdgeProfile &EP);
JsonValue strideProfileToJson(const StrideProfile &SP,
                              const ReportOptions &Options = {});
JsonValue prefetchStatsToJson(const PrefetchInsertionStats &Stats);
/// Classification verdicts per site plus the thresholds they were judged
/// against; \p SP supplies the ratios each verdict fired on.
JsonValue feedbackToJson(const FeedbackResult &FB, const StrideProfile &SP,
                         const ClassifierConfig &Config);
JsonValue pipelineConfigToJson(const PipelineConfig &Config);
/// Prefetch-outcome and per-site demand-miss attribution (run_report/2).
/// \p Feedback (optional) joins each site with its SSST/PMST/WSST verdict
/// for the by-class rollup; \p Instructions (the timed run's committed
/// instruction count) scales misses to MPKI when non-zero.
JsonValue attributionToJson(const AttributionData &Attr,
                            const FeedbackResult *Feedback = nullptr,
                            uint64_t Instructions = 0);
/// Profile-accuracy diff section (run_report/2).
JsonValue profileDiffToJson(const ProfileDiffResult &Diff);
/// Trace-capture accounting section (run_report/4): the sprof.trace
/// artifact a profile run recorded (path, schema, event/byte counts).
JsonValue traceCaptureToJson(const TraceCaptureInfo &Capture);
/// Trace-tier accounting section (run_report/5): selection counters,
/// entry/iteration/exit mix with the derived side-exit rate, and the
/// per-trace breakdown (shape, exit mix, per-guard exit counts).
JsonValue traceTierToJson(const TraceTierStats &TT);
JsonValue metricsToJson(const MetricsRegistry &Registry);
/// Engine self-profile section (run_report/3): sampling window, total
/// sample count, and every nonzero (workload, phase, op) cell with its
/// deterministic sample count and host-ns estimate, hottest first.
JsonValue selfProfileToJson(const EngineSelfProfiler &SP);
/// One engine job: name, category, timing, worker lane, outcome, and the
/// job's own metric scope.
JsonValue jobRecordToJson(const JobRecord &Record);
/// The session's "jobs" array (empty array when no jobs were recorded).
JsonValue jobsToJson(const ObsSession &Session);

/// The profile-generation half: method, run accounting, both profiles, and
/// the strideProf call statistics (Figures 20-22 raw data).
JsonValue profileRunToJson(const ProfileRunResult &R,
                           const ReportOptions &Options = {});

/// The timed half: run accounting, inserted prefetches, and the feedback
/// verdicts. \p SP must be the stride profile the feedback pass consumed.
JsonValue timedRunToJson(const TimedRunResult &R, const StrideProfile &SP,
                         const ClassifierConfig &Config,
                         const ReportOptions &Options = {});

/// Assembles the full versioned report. Null sections are omitted, so the
/// same schema serves profile-only and end-to-end runs. When \p Timed
/// carries enabled attribution the "attribution" section is emitted; a
/// non-null \p Diff adds the "profile_diff" section.
JsonValue buildRunReport(const std::string &WorkloadName,
                         const PipelineConfig &Config,
                         const ProfileRunResult *Profile,
                         const TimedRunResult *Timed,
                         const RunStats *Baseline, const ObsSession *Obs,
                         const ReportOptions &Options = {},
                         const ProfileDiffResult *Diff = nullptr);

/// buildRunReport + pretty-printed write.
void writeRunReport(std::ostream &OS, const std::string &WorkloadName,
                    const PipelineConfig &Config,
                    const ProfileRunResult *Profile,
                    const TimedRunResult *Timed, const RunStats *Baseline,
                    const ObsSession *Obs, const ReportOptions &Options = {},
                    const ProfileDiffResult *Diff = nullptr);

} // namespace sprof

#endif // SPROF_OBS_REPORT_H
