//===- obs/Sharded.cpp - Per-worker metric shards --------------------------===//
//
// Part of the StrideProf project (see Sharded.h for the project reference).
//
//===----------------------------------------------------------------------===//

#include "obs/Sharded.h"

using namespace sprof;

ShardedMetricsRegistry::ShardedMetricsRegistry(size_t NumShards) {
  if (NumShards == 0)
    NumShards = 1;
  Shards.reserve(NumShards);
  for (size_t I = 0; I != NumShards; ++I)
    Shards.push_back(std::make_unique<MetricsRegistry>());
}

void ShardedMetricsRegistry::mergeInto(MetricsRegistry &Target) const {
  for (const auto &S : Shards)
    Target.merge(*S);
}

void ShardedMetricsRegistry::clear() {
  for (auto &S : Shards)
    S = std::make_unique<MetricsRegistry>();
}
