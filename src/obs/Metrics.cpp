//===- obs/Metrics.cpp - Low-overhead metrics registry ---------------------===//
//
// Part of the StrideProf project (see Metrics.h for the project reference).
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"

#include <algorithm>
#include <cassert>

using namespace sprof;

Histogram::Histogram(std::vector<uint64_t> UpperBounds)
    : UpperBounds(std::move(UpperBounds)) {
  assert(std::is_sorted(this->UpperBounds.begin(),
                        this->UpperBounds.end()) &&
         "histogram bounds must be ascending");
  Buckets.assign(this->UpperBounds.size() + 1, 0);
}

void Histogram::record(uint64_t Sample) {
  size_t Idx = static_cast<size_t>(
      std::lower_bound(UpperBounds.begin(), UpperBounds.end(), Sample) -
      UpperBounds.begin());
  ++Buckets[Idx];
  ++Count;
  Sum += Sample;
  Min = std::min(Min, Sample);
  Max = std::max(Max, Sample);
}

void Histogram::record(uint64_t Sample, uint64_t N) {
  if (N == 0)
    return;
  size_t Idx = static_cast<size_t>(
      std::lower_bound(UpperBounds.begin(), UpperBounds.end(), Sample) -
      UpperBounds.begin());
  Buckets[Idx] += N;
  Count += N;
  Sum += Sample * N;
  Min = std::min(Min, Sample);
  Max = std::max(Max, Sample);
}

void Histogram::merge(const Histogram &Other) {
  if (Other.Count == 0)
    return;
  if (UpperBounds == Other.UpperBounds)
    for (size_t I = 0; I != Buckets.size(); ++I)
      Buckets[I] += Other.Buckets[I];
  Count += Other.Count;
  Sum += Other.Sum;
  Min = std::min(Min, Other.Min);
  Max = std::max(Max, Other.Max);
}

std::vector<uint64_t> Histogram::exponentialBounds(uint64_t Start,
                                                   unsigned NumBounds) {
  std::vector<uint64_t> Bounds;
  Bounds.reserve(NumBounds);
  uint64_t B = Start;
  for (unsigned I = 0; I != NumBounds; ++I) {
    Bounds.push_back(B);
    B *= 2;
  }
  return Bounds;
}

Counter &sprof::dummyCounter() {
  static thread_local Counter C;
  return C;
}

Histogram &sprof::dummyHistogram() {
  static thread_local Histogram H{std::vector<uint64_t>{}};
  return H;
}

MetricsRegistry::MetricsRegistry(const MetricsRegistry &Other) {
  std::lock_guard<std::mutex> L(Other.Mu);
  Counters = Other.Counters;
  Gauges = Other.Gauges;
  Histograms = Other.Histograms;
}

MetricsRegistry &MetricsRegistry::operator=(const MetricsRegistry &Other) {
  if (this == &Other)
    return *this;
  std::scoped_lock L(Mu, Other.Mu);
  Counters = Other.Counters;
  Gauges = Other.Gauges;
  Histograms = Other.Histograms;
  return *this;
}

Counter &MetricsRegistry::counter(std::string_view Name) {
  std::lock_guard<std::mutex> L(Mu);
  auto It = Counters.find(Name);
  if (It == Counters.end())
    It = Counters.emplace(std::string(Name), Counter()).first;
  return It->second;
}

Gauge &MetricsRegistry::gauge(std::string_view Name) {
  std::lock_guard<std::mutex> L(Mu);
  auto It = Gauges.find(Name);
  if (It == Gauges.end())
    It = Gauges.emplace(std::string(Name), Gauge()).first;
  return It->second;
}

void MetricsRegistry::merge(const MetricsRegistry &Other) {
  // Other must be quiescent (no concurrent producers); this registry may
  // have a concurrent sampler, which the per-lookup lock tolerates.
  for (const auto &[Name, C] : Other.Counters)
    counter(Name).inc(C.value());
  for (const auto &[Name, G] : Other.Gauges)
    gauge(Name).set(G.value());
  for (const auto &[Name, H] : Other.Histograms)
    histogram(Name, H.bounds()).merge(H);
}

void MetricsRegistry::setGaugesFrom(const MetricsRegistry &Other) {
  for (const auto &[Name, G] : Other.Gauges)
    gauge(Name).set(G.value());
}

void MetricsRegistry::snapshotScalars(
    std::vector<std::pair<std::string, uint64_t>> &CountersOut,
    std::vector<std::pair<std::string, double>> &GaugesOut) const {
  std::lock_guard<std::mutex> L(Mu);
  CountersOut.clear();
  CountersOut.reserve(Counters.size());
  for (const auto &[Name, C] : Counters)
    CountersOut.emplace_back(Name, C.value());
  GaugesOut.clear();
  GaugesOut.reserve(Gauges.size());
  for (const auto &[Name, G] : Gauges)
    GaugesOut.emplace_back(Name, G.value());
}

Histogram &MetricsRegistry::histogram(std::string_view Name,
                                      std::vector<uint64_t> UpperBounds) {
  std::lock_guard<std::mutex> L(Mu);
  auto It = Histograms.find(Name);
  if (It == Histograms.end())
    It = Histograms
             .emplace(std::string(Name),
                      UpperBounds.empty()
                          ? Histogram()
                          : Histogram(std::move(UpperBounds)))
             .first;
  return It->second;
}
