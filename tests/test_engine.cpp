//===- tests/test_engine.cpp - JobGraph and ExperimentEngine tests ----------===//
//
// Part of the StrideProf project test suite.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// JobGraph scheduling semantics (ordering, failure propagation, dependent
/// skipping), engine reuse after failure, per-job telemetry aggregation,
/// and the engine's core guarantee: an N-thread sweep is bit-identical to
/// the serial one for every profiling method.
///
//===----------------------------------------------------------------------===//

#include "driver/Engine.h"
#include "driver/Experiments.h"
#include "instrument/Instrumentation.h"
#include "profile/ProfileStore.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

using namespace sprof;
using namespace sprof::test;

namespace {

// The chase workload from TestHelpers wrapped as a Workload; small enough
// that a full method sweep stays fast.
class ChaseWorkload : public Workload {
public:
  WorkloadInfo info() const override {
    return {"test.chase", "c", "pointer chase"};
  }
  Program build(const BuildRequest &Req) const override {
    Program P;
    uint32_t DataSite = 0, NextSite = 0;
    P.M = makeChaseModule(DataSite, NextSite);
    uint64_t Seed = Req.seed(0x51dee);
    uint64_t Count = (Req.DS == DataSet::Train ? 192 : 256) + (Seed & 31);
    fillChaseList(P.Memory, Count, 64);
    return P;
  }
};

EngineOptions withThreads(unsigned N) {
  EngineOptions Opts;
  Opts.Threads = N;
  return Opts;
}

std::string profileText(const SweepCell &Cell) {
  ProfileStore Store({Cell.W->info().Name,
                      profilingMethodName(Cell.Method),
                      dataSetName(Cell.ProfileDS)},
                     Cell.Profile.Edges, Cell.Profile.Strides);
  return Store.toString();
}

TEST(JobGraph, SerialRunsInInsertionOrder) {
  JobGraph G;
  std::vector<int> Order;
  for (int I = 0; I != 5; ++I)
    G.add("job" + std::to_string(I), "test",
          [&Order, I](uint32_t) { Order.push_back(I); });
  std::vector<JobOutcome> Outcomes = G.run(1);
  EXPECT_EQ(Order, (std::vector<int>{0, 1, 2, 3, 4}));
  ASSERT_EQ(Outcomes.size(), 5u);
  for (const JobOutcome &O : Outcomes) {
    EXPECT_TRUE(O.Ran);
    EXPECT_TRUE(O.Ok);
  }
}

TEST(JobGraph, DependenciesCompleteBeforeDependents) {
  // A diamond per chain, run wide: every dependent asserts its
  // dependency's side effect is already visible.
  JobGraph G;
  constexpr int Chains = 8;
  std::atomic<int> DepDone[Chains];
  std::atomic<bool> OrderViolated{false};
  for (int I = 0; I != Chains; ++I)
    DepDone[I] = 0;
  for (int I = 0; I != Chains; ++I) {
    JobId A = G.add("a" + std::to_string(I), "test",
                    [&DepDone, I](uint32_t) { DepDone[I] = 1; });
    JobId B = G.add(
        "b" + std::to_string(I), "test",
        [&DepDone, &OrderViolated, I](uint32_t) {
          if (DepDone[I] != 1)
            OrderViolated = true;
          DepDone[I] = 2;
        },
        {A});
    G.add(
        "c" + std::to_string(I), "test",
        [&DepDone, &OrderViolated, I](uint32_t) {
          if (DepDone[I] != 2)
            OrderViolated = true;
        },
        {B});
  }
  std::vector<JobOutcome> Outcomes = G.run(4);
  EXPECT_FALSE(OrderViolated);
  for (const JobOutcome &O : Outcomes)
    EXPECT_TRUE(O.Ok);
}

TEST(JobGraph, FailurePropagatesAndSkipsDependents) {
  JobGraph G;
  bool IndependentRan = false, DependentRan = false, TransitiveRan = false;
  JobId Bad = G.add("bad", "test", [](uint32_t) {
    throw std::runtime_error("boom");
  });
  JobId Dep = G.add(
      "dep", "test", [&DependentRan](uint32_t) { DependentRan = true; },
      {Bad});
  G.add(
      "transitive", "test",
      [&TransitiveRan](uint32_t) { TransitiveRan = true; }, {Dep});
  G.add("independent", "test",
        [&IndependentRan](uint32_t) { IndependentRan = true; });

  std::vector<JobOutcome> Outcomes = G.run(1);
  ASSERT_EQ(Outcomes.size(), 4u);

  EXPECT_TRUE(Outcomes[0].Ran);
  EXPECT_FALSE(Outcomes[0].Ok);
  EXPECT_EQ(Outcomes[0].Error, "boom");
  EXPECT_TRUE(static_cast<bool>(Outcomes[0].Exception));

  // Direct and transitive dependents are skipped with a pointer at the
  // root cause; unrelated jobs still run.
  EXPECT_FALSE(DependentRan);
  EXPECT_FALSE(TransitiveRan);
  EXPECT_FALSE(Outcomes[1].Ran);
  EXPECT_NE(Outcomes[1].Error.find("skipped"), std::string::npos);
  EXPECT_NE(Outcomes[1].Error.find("bad"), std::string::npos);
  EXPECT_FALSE(Outcomes[2].Ran);
  EXPECT_TRUE(IndependentRan);
  EXPECT_TRUE(Outcomes[3].Ok);
}

TEST(ExperimentEngine, RethrowsFirstFailureAndStaysReusable) {
  ExperimentEngine Engine(withThreads(2));
  Engine.addJob("fails", "test", [](ObsSession *) {
    throw std::runtime_error("engine boom");
  });
  EXPECT_THROW(Engine.run(), std::runtime_error);
  ASSERT_EQ(Engine.lastOutcomes().size(), 1u);
  EXPECT_EQ(Engine.lastOutcomes()[0].Error, "engine boom");

  // The failed wave is drained; the engine accepts and runs new jobs.
  bool Ran = false;
  Engine.addJob("ok", "test", [&Ran](ObsSession *) { Ran = true; });
  Engine.run();
  EXPECT_TRUE(Ran);
  ASSERT_EQ(Engine.lastOutcomes().size(), 1u);
  EXPECT_TRUE(Engine.lastOutcomes()[0].Ok);
}

TEST(ExperimentEngine, FoldsJobTelemetryIntoSession) {
  EngineOptions Opts;
  Opts.Threads = 4;
  Opts.Obs.Enabled = true;
  ExperimentEngine Engine(Opts);
  ASSERT_NE(Engine.obs(), nullptr);

  for (int I = 0; I != 6; ++I)
    Engine.addJob("tick" + std::to_string(I), "test-job",
                  [](ObsSession *JobObs) {
                    ASSERT_NE(JobObs, nullptr);
                    JobObs->counter("test.ticks")->inc(10);
                  });
  Engine.run();

  // Counters from all six private job scopes merged into the session
  // registry.
  EXPECT_EQ(Engine.obs()->registry().counter("test.ticks").value(), 60u);

  // One JobRecord per job, in JobId order regardless of completion order,
  // each carrying its own metric scope.
  const std::vector<JobRecord> &Jobs = Engine.obs()->jobs();
  ASSERT_EQ(Jobs.size(), 6u);
  for (size_t I = 0; I != Jobs.size(); ++I) {
    EXPECT_EQ(Jobs[I].Name, "tick" + std::to_string(I));
    EXPECT_EQ(Jobs[I].Category, "test-job");
    EXPECT_TRUE(Jobs[I].Ok);
    EXPECT_EQ(Jobs[I].Metrics.counters().at("test.ticks").value(), 10u);
  }

  // Each job stamped one span onto the session trace.
  EXPECT_TRUE(Engine.obs()->trace().hasSpan("tick0"));
  EXPECT_TRUE(Engine.obs()->trace().hasSpan("tick5"));
}

// EngineOptions::ShardedMetrics is purely a contention knob: whatever
// worker folded whatever job scope into whatever shard, the session
// registry after the drain is bit-identical to the direct serial merge,
// gauges included (replayed in job-id order after the fold).
TEST(ExperimentEngine, ShardedFoldMatchesDirectMergeBitIdentical) {
  auto RunEngine = [](unsigned Threads, bool Sharded) {
    EngineOptions Opts;
    Opts.Threads = Threads;
    Opts.Obs.Enabled = true;
    Opts.ShardedMetrics = Sharded;
    ExperimentEngine Engine(Opts);
    for (int J = 0; J != 16; ++J)
      Engine.addJob("job" + std::to_string(J), "test-job",
                    [J](ObsSession *JobObs) {
                      JobObs->counter("fold.events")->inc(J + 1);
                      JobObs->histogram("fold.sizes")->record(J * 3 % 32);
                      JobObs->gauge("fold.last")->set(J);
                    });
    Engine.run();

    std::vector<std::pair<std::string, uint64_t>> Counters;
    std::vector<std::pair<std::string, double>> Gauges;
    Engine.obs()->registry().snapshotScalars(Counters, Gauges);
    const Histogram &H =
        Engine.obs()->registry().histograms().at("fold.sizes");
    return std::make_tuple(Counters, Gauges, H.count(), H.sum(),
                           H.bucketCounts());
  };

  auto Direct = RunEngine(1, /*Sharded=*/false);
  for (unsigned Threads : {1u, 4u, 8u}) {
    SCOPED_TRACE(Threads);
    EXPECT_EQ(RunEngine(Threads, /*Sharded=*/true), Direct);
  }
}

// The acceptance criterion: for every profiling method, profiles,
// classification verdicts, and timed runs from a 4-thread sweep are byte-
// identical to the 1-thread sweep.
TEST(ExperimentEngine, ParallelSweepMatchesSerialForAllMethods) {
  ChaseWorkload W;
  SweepSpec Spec;
  Spec.Workloads = {&W};
  Spec.Methods = allProfilingMethods();
  Spec.WithMemorySystem = false;
  Spec.Feedback = true;
  Spec.FeedbackInput = DataSet::Train;
  Spec.Baseline = true;

  ExperimentEngine Serial(withThreads(1));
  ExperimentEngine Parallel(withThreads(4));
  SweepResult RS = Serial.runSweep(Spec);
  SweepResult RP = Parallel.runSweep(Spec);

  ASSERT_EQ(RS.Cells.size(), Spec.Methods.size());
  ASSERT_EQ(RP.Cells.size(), RS.Cells.size());
  ASSERT_EQ(RS.BaselineCycles.size(), 1u);
  EXPECT_EQ(RP.BaselineCycles, RS.BaselineCycles);

  for (size_t I = 0; I != RS.Cells.size(); ++I) {
    const SweepCell &S = RS.Cells[I];
    const SweepCell &P = RP.Cells[I];
    ASSERT_EQ(P.Method, S.Method);
    SCOPED_TRACE(profilingMethodName(S.Method));

    // Profiles serialize to the same bytes.
    EXPECT_EQ(profileText(P), profileText(S));
    EXPECT_EQ(P.Profile.Stats.Instructions, S.Profile.Stats.Instructions);
    EXPECT_EQ(P.Profile.StrideInvocations, S.Profile.StrideInvocations);

    // Identical classification verdicts and timed runs.
    ASSERT_TRUE(S.HasFeedback);
    ASSERT_TRUE(P.HasFeedback);
    EXPECT_EQ(P.Timed.Feedback.SiteClass, S.Timed.Feedback.SiteClass);
    EXPECT_EQ(P.Timed.Feedback.Decisions.size(),
              S.Timed.Feedback.Decisions.size());
    EXPECT_EQ(P.Timed.Stats.Cycles, S.Timed.Stats.Cycles);
    EXPECT_EQ(P.Speedup, S.Speedup);
    EXPECT_GT(S.Speedup, 0.0);
  }
}

TEST(ExperimentEngine, SeedOffsetZeroReproducesStandalonePipeline) {
  ChaseWorkload W;
  SweepSpec Spec;
  Spec.Workloads = {&W};
  Spec.Methods = {ProfilingMethod::EdgeCheck};
  Spec.SeedOffsets = {0, 1};
  Spec.WithMemorySystem = false;

  ExperimentEngine Engine(withThreads(2));
  SweepResult R = Engine.runSweep(Spec);
  ASSERT_EQ(R.Cells.size(), 2u);

  const SweepCell *Canonical =
      R.find(&W, ProfilingMethod::EdgeCheck, DataSet::Train, 0);
  const SweepCell *Replica =
      R.find(&W, ProfilingMethod::EdgeCheck, DataSet::Train, 1);
  ASSERT_NE(Canonical, nullptr);
  ASSERT_NE(Replica, nullptr);

  // Offset 0 is the canonical build: bit-identical to a plain Pipeline.
  Pipeline P(W);
  ProfileRunResult Direct =
      P.runProfile(ProfilingMethod::EdgeCheck, DataSet::Train,
                   /*WithMemorySystem=*/false);
  ProfileStore DirectStore({W.info().Name, "edge-check", "train"},
                           Direct.Edges, Direct.Strides);
  EXPECT_EQ(profileText(*Canonical), DirectStore.toString());

  // A non-zero offset owns a different RNG stream, so its profile is a
  // genuine replica, not a copy.
  EXPECT_NE(profileText(*Replica), profileText(*Canonical));
}

} // namespace
