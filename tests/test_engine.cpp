//===- tests/test_engine.cpp - JobGraph and ExperimentEngine tests ----------===//
//
// Part of the StrideProf project test suite.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// JobGraph scheduling semantics (ordering, failure propagation, dependent
/// skipping), engine reuse after failure, per-job telemetry aggregation,
/// and the engine's core guarantee: an N-thread sweep is bit-identical to
/// the serial one for every profiling method.
///
//===----------------------------------------------------------------------===//

#include "driver/Engine.h"
#include "driver/Experiments.h"
#include "instrument/Instrumentation.h"
#include "obs/FlightRecorder.h"
#include "profile/ProfileStore.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>

using namespace sprof;
using namespace sprof::test;

namespace {

// The chase workload from TestHelpers wrapped as a Workload; small enough
// that a full method sweep stays fast.
class ChaseWorkload : public Workload {
public:
  WorkloadInfo info() const override {
    return {"test.chase", "c", "pointer chase"};
  }
  Program build(const BuildRequest &Req) const override {
    Program P;
    uint32_t DataSite = 0, NextSite = 0;
    P.M = makeChaseModule(DataSite, NextSite);
    uint64_t Seed = Req.seed(0x51dee);
    uint64_t Count = (Req.DS == DataSet::Train ? 192 : 256) + (Seed & 31);
    fillChaseList(P.Memory, Count, 64);
    return P;
  }
};

EngineOptions withThreads(unsigned N) {
  EngineOptions Opts;
  Opts.Threads = N;
  return Opts;
}

std::string profileText(const SweepCell &Cell) {
  ProfileStore Store({Cell.W->info().Name,
                      profilingMethodName(Cell.Method),
                      dataSetName(Cell.ProfileDS)},
                     Cell.Profile.Edges, Cell.Profile.Strides);
  return Store.toString();
}

TEST(JobGraph, SerialRunsInInsertionOrder) {
  JobGraph G;
  std::vector<int> Order;
  for (int I = 0; I != 5; ++I)
    G.add("job" + std::to_string(I), "test",
          [&Order, I](uint32_t) { Order.push_back(I); });
  std::vector<JobOutcome> Outcomes = G.run(1);
  EXPECT_EQ(Order, (std::vector<int>{0, 1, 2, 3, 4}));
  ASSERT_EQ(Outcomes.size(), 5u);
  for (const JobOutcome &O : Outcomes) {
    EXPECT_TRUE(O.Ran);
    EXPECT_TRUE(O.Ok);
  }
}

TEST(JobGraph, DependenciesCompleteBeforeDependents) {
  // A diamond per chain, run wide: every dependent asserts its
  // dependency's side effect is already visible.
  JobGraph G;
  constexpr int Chains = 8;
  std::atomic<int> DepDone[Chains];
  std::atomic<bool> OrderViolated{false};
  for (int I = 0; I != Chains; ++I)
    DepDone[I] = 0;
  for (int I = 0; I != Chains; ++I) {
    JobId A = G.add("a" + std::to_string(I), "test",
                    [&DepDone, I](uint32_t) { DepDone[I] = 1; });
    JobId B = G.add(
        "b" + std::to_string(I), "test",
        [&DepDone, &OrderViolated, I](uint32_t) {
          if (DepDone[I] != 1)
            OrderViolated = true;
          DepDone[I] = 2;
        },
        {A});
    G.add(
        "c" + std::to_string(I), "test",
        [&DepDone, &OrderViolated, I](uint32_t) {
          if (DepDone[I] != 2)
            OrderViolated = true;
        },
        {B});
  }
  std::vector<JobOutcome> Outcomes = G.run(4);
  EXPECT_FALSE(OrderViolated);
  for (const JobOutcome &O : Outcomes)
    EXPECT_TRUE(O.Ok);
}

TEST(JobGraph, FailurePropagatesAndSkipsDependents) {
  JobGraph G;
  bool IndependentRan = false, DependentRan = false, TransitiveRan = false;
  JobId Bad = G.add("bad", "test", [](uint32_t) {
    throw std::runtime_error("boom");
  });
  JobId Dep = G.add(
      "dep", "test", [&DependentRan](uint32_t) { DependentRan = true; },
      {Bad});
  G.add(
      "transitive", "test",
      [&TransitiveRan](uint32_t) { TransitiveRan = true; }, {Dep});
  G.add("independent", "test",
        [&IndependentRan](uint32_t) { IndependentRan = true; });

  std::vector<JobOutcome> Outcomes = G.run(1);
  ASSERT_EQ(Outcomes.size(), 4u);

  EXPECT_TRUE(Outcomes[0].Ran);
  EXPECT_FALSE(Outcomes[0].Ok);
  EXPECT_EQ(Outcomes[0].Error, "boom");
  EXPECT_TRUE(static_cast<bool>(Outcomes[0].Exception));

  // Direct and transitive dependents are skipped with a pointer at the
  // root cause; unrelated jobs still run.
  EXPECT_FALSE(DependentRan);
  EXPECT_FALSE(TransitiveRan);
  EXPECT_FALSE(Outcomes[1].Ran);
  EXPECT_NE(Outcomes[1].Error.find("skipped"), std::string::npos);
  EXPECT_NE(Outcomes[1].Error.find("bad"), std::string::npos);
  EXPECT_FALSE(Outcomes[2].Ran);
  EXPECT_TRUE(IndependentRan);
  EXPECT_TRUE(Outcomes[3].Ok);
}

TEST(ExperimentEngine, RethrowsFirstFailureAndStaysReusable) {
  ExperimentEngine Engine(withThreads(2));
  Engine.addJob("fails", "test", [](ObsSession *) {
    throw std::runtime_error("engine boom");
  });
  EXPECT_THROW(Engine.run(), std::runtime_error);
  ASSERT_EQ(Engine.lastOutcomes().size(), 1u);
  EXPECT_EQ(Engine.lastOutcomes()[0].Error, "engine boom");

  // The failed wave is drained; the engine accepts and runs new jobs.
  bool Ran = false;
  Engine.addJob("ok", "test", [&Ran](ObsSession *) { Ran = true; });
  Engine.run();
  EXPECT_TRUE(Ran);
  ASSERT_EQ(Engine.lastOutcomes().size(), 1u);
  EXPECT_TRUE(Engine.lastOutcomes()[0].Ok);
}

TEST(ExperimentEngine, FoldsJobTelemetryIntoSession) {
  EngineOptions Opts;
  Opts.Threads = 4;
  Opts.Obs.Enabled = true;
  ExperimentEngine Engine(Opts);
  ASSERT_NE(Engine.obs(), nullptr);

  for (int I = 0; I != 6; ++I)
    Engine.addJob("tick" + std::to_string(I), "test-job",
                  [](ObsSession *JobObs) {
                    ASSERT_NE(JobObs, nullptr);
                    JobObs->counter("test.ticks")->inc(10);
                  });
  Engine.run();

  // Counters from all six private job scopes merged into the session
  // registry.
  EXPECT_EQ(Engine.obs()->registry().counter("test.ticks").value(), 60u);

  // One JobRecord per job, in JobId order regardless of completion order,
  // each carrying its own metric scope.
  const std::vector<JobRecord> &Jobs = Engine.obs()->jobs();
  ASSERT_EQ(Jobs.size(), 6u);
  for (size_t I = 0; I != Jobs.size(); ++I) {
    EXPECT_EQ(Jobs[I].Name, "tick" + std::to_string(I));
    EXPECT_EQ(Jobs[I].Category, "test-job");
    EXPECT_TRUE(Jobs[I].Ok);
    EXPECT_EQ(Jobs[I].Metrics.counters().at("test.ticks").value(), 10u);
  }

  // Each job stamped one span onto the session trace.
  EXPECT_TRUE(Engine.obs()->trace().hasSpan("tick0"));
  EXPECT_TRUE(Engine.obs()->trace().hasSpan("tick5"));
}

// EngineOptions::ShardedMetrics is purely a contention knob: whatever
// worker folded whatever job scope into whatever shard, the session
// registry after the drain is bit-identical to the direct serial merge,
// gauges included (replayed in job-id order after the fold).
TEST(ExperimentEngine, ShardedFoldMatchesDirectMergeBitIdentical) {
  auto RunEngine = [](unsigned Threads, bool Sharded) {
    EngineOptions Opts;
    Opts.Threads = Threads;
    Opts.Obs.Enabled = true;
    Opts.ShardedMetrics = Sharded;
    ExperimentEngine Engine(Opts);
    for (int J = 0; J != 16; ++J)
      Engine.addJob("job" + std::to_string(J), "test-job",
                    [J](ObsSession *JobObs) {
                      JobObs->counter("fold.events")->inc(J + 1);
                      JobObs->histogram("fold.sizes")->record(J * 3 % 32);
                      JobObs->gauge("fold.last")->set(J);
                    });
    Engine.run();

    std::vector<std::pair<std::string, uint64_t>> Counters;
    std::vector<std::pair<std::string, double>> Gauges;
    Engine.obs()->registry().snapshotScalars(Counters, Gauges);
    // The engine's own scheduler telemetry (engine.*) is intentionally
    // outside the determinism contract: wakeup retries, queue high-water,
    // and wait-time histograms depend on worker interleaving. Job-scope
    // metrics must still fold bit-identically.
    auto IsEngine = [](const auto &KV) {
      return KV.first.rfind("engine.", 0) == 0;
    };
    Counters.erase(
        std::remove_if(Counters.begin(), Counters.end(), IsEngine),
        Counters.end());
    Gauges.erase(std::remove_if(Gauges.begin(), Gauges.end(), IsEngine),
                 Gauges.end());
    const Histogram &H =
        Engine.obs()->registry().histograms().at("fold.sizes");
    return std::make_tuple(Counters, Gauges, H.count(), H.sum(),
                           H.bucketCounts());
  };

  auto Direct = RunEngine(1, /*Sharded=*/false);
  for (unsigned Threads : {1u, 4u, 8u}) {
    SCOPED_TRACE(Threads);
    EXPECT_EQ(RunEngine(Threads, /*Sharded=*/true), Direct);
  }
}

// A graph with a structurally forced critical path: a three-job chain of
// the longest jobs (ids 0..2) plus six quick independents. The chain's
// weight dwarfs every other path, so the report's critical path cannot
// depend on worker placement.
void addSweepShape(ExperimentEngine &Engine) {
  JobId Prev = 0;
  for (int Stage = 0; Stage != 3; ++Stage) {
    std::vector<JobId> Deps;
    if (Stage != 0)
      Deps.push_back(Prev);
    Prev = Engine.addJob(
        "stage" + std::to_string(Stage), "chain-job",
        [](ObsSession *) {
          std::this_thread::sleep_for(std::chrono::milliseconds(25));
        },
        std::move(Deps));
  }
  for (int I = 0; I != 6; ++I)
    Engine.addJob("quick" + std::to_string(I), "leaf-job",
                  [](ObsSession *) {
                    std::this_thread::sleep_for(std::chrono::milliseconds(1));
                  });
}

// The deterministic projection of a sweep report: structure and outcomes,
// no timestamps and no worker placement.
std::string sweepReportShape(const JsonValue &Report) {
  std::ostringstream OS;
  const JsonValue *Jobs = Report.get("jobs");
  for (const JsonValue &J : Jobs->items()) {
    OS << J.get("id")->asUInt() << ":" << J.get("name")->asString() << ":"
       << J.get("category")->asString() << ":deps[";
    for (const JsonValue &D : J.get("deps")->items())
      OS << D.asUInt() << ",";
    OS << "]:" << (J.get("ok")->asBool() ? "ok" : "fail") << "\n";
  }
  OS << "critical:";
  for (const JsonValue &Id : Report.get("critical_path")->get("jobs")->items())
    OS << Id.asUInt() << ",";
  const JsonValue *Sched = Report.get("scheduler");
  OS << "\nsched:" << Sched->get("jobs_enqueued")->asUInt() << "/"
     << Sched->get("jobs_started")->asUInt() << "/"
     << Sched->get("jobs_finished")->asUInt() << "/"
     << Sched->get("jobs_failed")->asUInt() << "/"
     << Sched->get("jobs_skipped")->asUInt();
  return OS.str();
}

// The sweep report's deterministic projection — jobs, dependency edges,
// outcomes, the critical path, and the scheduler's job accounting — is
// identical whatever the thread count; only timestamps and placement may
// move.
TEST(ExperimentEngine, SweepReportShapeIdenticalSerialVsParallel) {
  auto Run = [](unsigned Threads) {
    EngineOptions Opts;
    Opts.Threads = Threads;
    Opts.Obs.Enabled = true;
    ExperimentEngine Engine(Opts);
    addSweepShape(Engine);
    Engine.run();
    return Engine.sweepReport();
  };
  JsonValue Serial = Run(1);
  std::string Shape = sweepReportShape(Serial);
  for (unsigned Threads : {2u, 4u}) {
    SCOPED_TRACE(Threads);
    EXPECT_EQ(sweepReportShape(Run(Threads)), Shape);
  }
  // And the forced shape is actually forced: the chain is the path.
  const JsonValue *Chain = Serial.get("critical_path")->get("jobs");
  ASSERT_EQ(Chain->size(), 3u);
  EXPECT_EQ(Chain->at(0).asUInt(), 0u);
  EXPECT_EQ(Chain->at(1).asUInt(), 1u);
  EXPECT_EQ(Chain->at(2).asUInt(), 2u);
}

TEST(ExperimentEngine, SweepReportInvariantsAndSchedulerTelemetry) {
  EngineOptions Opts;
  Opts.Threads = 2;
  Opts.Obs.Enabled = true;
  ExperimentEngine Engine(Opts);
  addSweepShape(Engine);
  Engine.run();

  JsonValue Report = Engine.sweepReport();
  EXPECT_EQ(Report.get("schema")->asString(), SweepReportSchemaV1);
  const JsonValue *Jobs = Report.get("jobs");
  ASSERT_NE(Jobs, nullptr);
  ASSERT_EQ(Jobs->size(), 9u);
  for (const JsonValue &J : Jobs->items()) {
    uint64_t Id = J.get("id")->asUInt();
    EXPECT_EQ(J.get("finish_us")->asUInt(),
              J.get("start_us")->asUInt() + J.get("run_us")->asUInt());
    EXPECT_GE(J.get("start_us")->asUInt(), J.get("ready_us")->asUInt());
    EXPECT_EQ(J.get("queue_wait_us")->asUInt(),
              J.get("start_us")->asUInt() - J.get("ready_us")->asUInt());
    for (const JsonValue &D : J.get("deps")->items())
      EXPECT_LT(D.asUInt(), Id);
  }

  // sum(critical chain durations) == duration_us <= wall_us.
  const JsonValue *Crit = Report.get("critical_path");
  uint64_t ChainSum = 0;
  for (const JsonValue &Id : Crit->get("jobs")->items())
    ChainSum += Jobs->at(Id.asUInt()).get("run_us")->asUInt();
  EXPECT_EQ(Crit->get("duration_us")->asUInt(), ChainSum);
  EXPECT_LE(Crit->get("duration_us")->asUInt(),
            Crit->get("wall_us")->asUInt());

  const JsonValue *Sched = Report.get("scheduler");
  ASSERT_NE(Sched, nullptr);
  EXPECT_EQ(Sched->get("jobs_enqueued")->asUInt(), 9u);
  EXPECT_EQ(Sched->get("workers")->size(), 2u);

  // The same accounting flows into the session registry as engine.*
  // metrics.
  const MetricsRegistry &Reg = Engine.obs()->registry();
  EXPECT_EQ(Reg.counters().at("engine.jobs.enqueued").value(), 9u);
  EXPECT_EQ(Reg.counters().at("engine.jobs.finished").value(), 9u);
  EXPECT_EQ(Reg.counters().at("engine.jobs.failed").value(), 0u);
  EXPECT_EQ(Reg.histograms().at("engine.job.run_us").count(), 9u);
}

// The flight recorder's ring is bounded and its dump names the job that
// was in flight — the crash/hang post-mortem contract, minus the signal
// (scripts/check_flight_recorder.sh covers the real SIGSEGV/watchdog
// paths out of process).
TEST(FlightRecorder, DumpNamesInFlightJobAndKeepsNewestEvents) {
  FlightRecorder R(2, 8);
  R.bindThread(0);
  for (int I = 0; I != 40; ++I) {
    std::string Name = "job" + std::to_string(I);
    R.jobStart(0, Name.c_str(), "leaf-job");
    R.jobFinish(0, Name.c_str(), true);
  }
  R.jobStart(0, "wedged", "chain-job");
  FlightRecorder::unbindThread();

  std::string Path = testing::TempDir() + "flightrec_inflight.json";
  ASSERT_TRUE(R.dumpFile(Path.c_str(), "request"));
  std::ifstream In(Path);
  std::stringstream Buf;
  Buf << In.rdbuf();
  JsonValue Doc;
  ASSERT_TRUE(JsonValue::parse(Buf.str(), Doc));
  EXPECT_EQ(Doc.get("schema")->asString(), FlightRecSchemaV1);
  EXPECT_EQ(Doc.get("reason")->asString(), "request");
  const JsonValue *Workers = Doc.get("workers");
  ASSERT_NE(Workers, nullptr);
  ASSERT_EQ(Workers->size(), 2u);

  const JsonValue &Lane = Workers->at(0);
  EXPECT_TRUE(Lane.get("in_flight")->asBool());
  EXPECT_EQ(Lane.get("current_job")->asString(), "wedged");
  const JsonValue *Events = Lane.get("events");
  ASSERT_NE(Events, nullptr);
  // Bounded: the ring holds at most 8 slots, and the newest event is the
  // wedged job's start; the earliest jobs were lapped away.
  EXPECT_LE(Events->size(), 8u);
  ASSERT_GT(Events->size(), 0u);
  EXPECT_EQ(Events->at(Events->size() - 1).get("name")->asString(),
            "wedged");
  for (const JsonValue &E : Events->items())
    EXPECT_NE(E.get("name")->asString(), "job0");
  // The idle lane dumped too, empty.
  EXPECT_FALSE(Workers->at(1).get("in_flight")->asBool());
}

// Writers on distinct lanes with concurrent dumps: the seqlock protocol
// must keep this race-free (TSan runs this in CI) and every completed
// dump parseable.
TEST(FlightRecorder, ConcurrentLanesAndDumpsStayConsistent) {
  constexpr unsigned Lanes = 4;
  FlightRecorder R(Lanes, 16);
  std::atomic<bool> Stop{false};
  std::vector<std::thread> Writers;
  for (unsigned W = 0; W != Lanes; ++W)
    Writers.emplace_back([&R, W, &Stop] {
      R.bindThread(W);
      for (int I = 0; !Stop.load(std::memory_order_relaxed) && I != 4000;
           ++I) {
        std::string Name = "w" + std::to_string(W) + ":" +
                           std::to_string(I);
        R.jobStart(W, Name.c_str(), "race-job");
        FlightRecorder::notePhase("execute");
        R.jobFinish(W, Name.c_str(), true);
      }
      FlightRecorder::unbindThread();
    });

  // Dump repeatedly while the writers are spinning; a reader must never
  // block a writer or tear an event.
  std::string Path = testing::TempDir() + "flightrec_race.json";
  for (int D = 0; D != 20; ++D)
    ASSERT_TRUE(R.dumpFile(Path.c_str(), "request"));
  Stop = true;
  for (std::thread &T : Writers)
    T.join();

  ASSERT_TRUE(R.dumpFile(Path.c_str(), "request"));
  std::ifstream In(Path);
  std::stringstream Buf;
  Buf << In.rdbuf();
  JsonValue Doc;
  ASSERT_TRUE(JsonValue::parse(Buf.str(), Doc));
  const JsonValue *Workers = Doc.get("workers");
  ASSERT_EQ(Workers->size(), Lanes);
  for (const JsonValue &Lane : Workers->items()) {
    EXPECT_FALSE(Lane.get("in_flight")->asBool());
    // Quiesced: every retained slot is stable, so the full ring dumps.
    EXPECT_GT(Lane.get("events")->size(), 0u);
  }
}

// The acceptance criterion: for every profiling method, profiles,
// classification verdicts, and timed runs from a 4-thread sweep are byte-
// identical to the 1-thread sweep.
TEST(ExperimentEngine, ParallelSweepMatchesSerialForAllMethods) {
  ChaseWorkload W;
  SweepSpec Spec;
  Spec.Workloads = {&W};
  Spec.Methods = allProfilingMethods();
  Spec.WithMemorySystem = false;
  Spec.Feedback = true;
  Spec.FeedbackInput = DataSet::Train;
  Spec.Baseline = true;

  ExperimentEngine Serial(withThreads(1));
  ExperimentEngine Parallel(withThreads(4));
  SweepResult RS = Serial.runSweep(Spec);
  SweepResult RP = Parallel.runSweep(Spec);

  ASSERT_EQ(RS.Cells.size(), Spec.Methods.size());
  ASSERT_EQ(RP.Cells.size(), RS.Cells.size());
  ASSERT_EQ(RS.BaselineCycles.size(), 1u);
  EXPECT_EQ(RP.BaselineCycles, RS.BaselineCycles);

  for (size_t I = 0; I != RS.Cells.size(); ++I) {
    const SweepCell &S = RS.Cells[I];
    const SweepCell &P = RP.Cells[I];
    ASSERT_EQ(P.Method, S.Method);
    SCOPED_TRACE(profilingMethodName(S.Method));

    // Profiles serialize to the same bytes.
    EXPECT_EQ(profileText(P), profileText(S));
    EXPECT_EQ(P.Profile.Stats.Instructions, S.Profile.Stats.Instructions);
    EXPECT_EQ(P.Profile.StrideInvocations, S.Profile.StrideInvocations);

    // Identical classification verdicts and timed runs.
    ASSERT_TRUE(S.HasFeedback);
    ASSERT_TRUE(P.HasFeedback);
    EXPECT_EQ(P.Timed.Feedback.SiteClass, S.Timed.Feedback.SiteClass);
    EXPECT_EQ(P.Timed.Feedback.Decisions.size(),
              S.Timed.Feedback.Decisions.size());
    EXPECT_EQ(P.Timed.Stats.Cycles, S.Timed.Stats.Cycles);
    EXPECT_EQ(P.Speedup, S.Speedup);
    EXPECT_GT(S.Speedup, 0.0);
  }
}

TEST(ExperimentEngine, SeedOffsetZeroReproducesStandalonePipeline) {
  ChaseWorkload W;
  SweepSpec Spec;
  Spec.Workloads = {&W};
  Spec.Methods = {ProfilingMethod::EdgeCheck};
  Spec.SeedOffsets = {0, 1};
  Spec.WithMemorySystem = false;

  ExperimentEngine Engine(withThreads(2));
  SweepResult R = Engine.runSweep(Spec);
  ASSERT_EQ(R.Cells.size(), 2u);

  const SweepCell *Canonical =
      R.find(&W, ProfilingMethod::EdgeCheck, DataSet::Train, 0);
  const SweepCell *Replica =
      R.find(&W, ProfilingMethod::EdgeCheck, DataSet::Train, 1);
  ASSERT_NE(Canonical, nullptr);
  ASSERT_NE(Replica, nullptr);

  // Offset 0 is the canonical build: bit-identical to a plain Pipeline.
  Pipeline P(W);
  ProfileRunResult Direct =
      P.runProfile(ProfilingMethod::EdgeCheck, DataSet::Train,
                   /*WithMemorySystem=*/false);
  ProfileStore DirectStore({W.info().Name, "edge-check", "train"},
                           Direct.Edges, Direct.Strides);
  EXPECT_EQ(profileText(*Canonical), DirectStore.toString());

  // A non-zero offset owns a different RNG stream, so its profile is a
  // genuine replica, not a copy.
  EXPECT_NE(profileText(*Replica), profileText(*Canonical));
}

} // namespace
