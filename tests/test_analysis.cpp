//===- tests/test_analysis.cpp - CFG analysis unit tests --------------------===//
//
// Part of the StrideProf project test suite.
//
//===----------------------------------------------------------------------===//

#include "analysis/CfgEdit.h"
#include "analysis/ControlEquivalence.h"
#include "analysis/Dominators.h"
#include "analysis/EquivalentLoads.h"
#include "analysis/LoopInfo.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"

#include "TestHelpers.h"
#include <gtest/gtest.h>

using namespace sprof;

namespace {

/// Builds a diamond: entry -> (left | right) -> join -> exit(halt).
Module makeDiamond() {
  Module M;
  IRBuilder B(M);
  B.startFunction("main", 0);
  Function &F = B.function();
  uint32_t Left = F.newBlock("left");
  uint32_t Right = F.newBlock("right");
  uint32_t Join = F.newBlock("join");

  Reg C = B.movImm(1);
  B.br(Operand::reg(C), Left, Right);
  B.setBlock(Left);
  B.jmp(Join);
  B.setBlock(Right);
  B.jmp(Join);
  B.setBlock(Join);
  B.halt();
  return M;
}

/// Builds a nested loop:
///   entry -> outer.head
///   outer.head -> inner.head | exit
///   inner.head -> inner.body | outer.latch
///   inner.body -> inner.head
///   outer.latch -> outer.head
Module makeNestedLoops() {
  Module M;
  IRBuilder B(M);
  B.startFunction("main", 0);
  Function &F = B.function();
  uint32_t OuterHead = F.newBlock("outer.head");
  uint32_t InnerHead = F.newBlock("inner.head");
  uint32_t InnerBody = F.newBlock("inner.body");
  uint32_t OuterLatch = F.newBlock("outer.latch");
  uint32_t Exit = F.newBlock("exit");

  Reg I = B.movImm(0);
  Reg J = B.movImm(0);
  B.jmp(OuterHead);

  B.setBlock(OuterHead);
  Reg C1 = B.cmp(Opcode::CmpLt, Operand::reg(I), Operand::imm(10));
  B.br(Operand::reg(C1), InnerHead, Exit);

  B.setBlock(InnerHead);
  Reg C2 = B.cmp(Opcode::CmpLt, Operand::reg(J), Operand::imm(10));
  B.br(Operand::reg(C2), InnerBody, OuterLatch);

  B.setBlock(InnerBody);
  B.add(Operand::reg(J), Operand::imm(1), J);
  B.jmp(InnerHead);

  B.setBlock(OuterLatch);
  B.add(Operand::reg(I), Operand::imm(1), I);
  B.movImm(0, J);
  B.jmp(OuterHead);

  B.setBlock(Exit);
  B.halt();
  return M;
}

/// Irreducible: entry branches into the middle of a cycle a <-> b.
Module makeIrreducible() {
  Module M;
  IRBuilder B(M);
  B.startFunction("main", 0);
  Function &F = B.function();
  uint32_t A = F.newBlock("a");
  uint32_t Bb = F.newBlock("b");
  uint32_t Exit = F.newBlock("exit");

  Reg C = B.movImm(1);
  B.br(Operand::reg(C), A, Bb); // two-entry cycle

  B.setBlock(A);
  Reg C2 = B.cmp(Opcode::CmpLt, Operand::reg(C), Operand::imm(5));
  B.br(Operand::reg(C2), Bb, Exit);

  B.setBlock(Bb);
  B.jmp(A);

  B.setBlock(Exit);
  B.halt();
  return M;
}

} // namespace

TEST(Dominators, DiamondStructure) {
  Module M = makeDiamond();
  const Function &F = M.Functions[0];
  DomTree DT = DomTree::forward(F);
  // Entry dominates everything.
  for (uint32_t Bl = 0; Bl != 4; ++Bl)
    EXPECT_TRUE(DT.dominates(0, Bl));
  // Neither branch side dominates the join.
  EXPECT_FALSE(DT.dominates(1, 3));
  EXPECT_FALSE(DT.dominates(2, 3));
  EXPECT_EQ(DT.idom(3), 0u);
}

TEST(Dominators, PostDominatorsOfDiamond) {
  Module M = makeDiamond();
  const Function &F = M.Functions[0];
  DomTree PDT = DomTree::backward(F);
  // Join post-dominates everything.
  for (uint32_t Bl = 0; Bl != 3; ++Bl)
    EXPECT_TRUE(PDT.dominates(3, Bl));
  EXPECT_FALSE(PDT.dominates(1, 0));
}

TEST(Dominators, UnreachableBlocks) {
  Module M = makeDiamond();
  Function &F = M.Functions[0];
  uint32_t Dead = F.newBlock("dead");
  Instruction I;
  I.Op = Opcode::Halt;
  F.Blocks[Dead].Insts.push_back(I);
  DomTree DT = DomTree::forward(F);
  EXPECT_FALSE(DT.isReachable(Dead));
  EXPECT_FALSE(DT.dominates(0, Dead));
}

TEST(LoopInfo, FindsNestedLoops) {
  Module M = makeNestedLoops();
  const Function &F = M.Functions[0];
  DomTree DT = DomTree::forward(F);
  LoopInfo LI(F, DT);
  ASSERT_EQ(LI.loops().size(), 2u);

  // Identify loops by header name.
  uint32_t InnerIdx = ~0u, OuterIdx = ~0u;
  for (uint32_t L = 0; L != 2; ++L) {
    if (F.Blocks[LI.loops()[L].Header].Name == "inner.head")
      InnerIdx = L;
    if (F.Blocks[LI.loops()[L].Header].Name == "outer.head")
      OuterIdx = L;
  }
  ASSERT_NE(InnerIdx, ~0u);
  ASSERT_NE(OuterIdx, ~0u);
  EXPECT_EQ(LI.loops()[InnerIdx].Parent, OuterIdx);
  EXPECT_EQ(LI.loops()[InnerIdx].Depth, 2u);
  EXPECT_EQ(LI.loops()[OuterIdx].Depth, 1u);

  // The inner body's innermost loop is the inner loop.
  EXPECT_EQ(LI.innermostLoop(3), InnerIdx);
  // The outer latch belongs only to the outer loop.
  EXPECT_EQ(LI.innermostLoop(4), OuterIdx);
  EXPECT_TRUE(LI.isInLoop(3));
  EXPECT_FALSE(LI.isInLoop(5)); // exit
}

TEST(LoopInfo, EnteringAndHeaderOutEdges) {
  Module M = makeNestedLoops();
  const Function &F = M.Functions[0];
  DomTree DT = DomTree::forward(F);
  LoopInfo LI(F, DT);
  uint32_t OuterIdx =
      F.Blocks[LI.loops()[0].Header].Name == "outer.head" ? 0 : 1;

  std::vector<Edge> Entering = LI.enteringEdges(OuterIdx);
  ASSERT_EQ(Entering.size(), 1u);
  EXPECT_EQ(Entering[0].From, 0u); // function entry

  std::vector<Edge> HeadOut = LI.headerOutEdges(OuterIdx);
  EXPECT_EQ(HeadOut.size(), 2u);
}

TEST(LoopInfo, IrreducibleCycleDetected) {
  Module M = makeIrreducible();
  const Function &F = M.Functions[0];
  DomTree DT = DomTree::forward(F);
  LoopInfo LI(F, DT);
  EXPECT_TRUE(LI.isIrreducible(1));
  EXPECT_TRUE(LI.isIrreducible(2));
  EXPECT_FALSE(LI.isIrreducible(0));
  // Blocks in the irreducible cycle are not "in loop" for profiling.
  EXPECT_FALSE(LI.isInLoop(1));
  EXPECT_FALSE(LI.isInLoop(2));
}

TEST(LoopInfo, LoopInvariantRegisters) {
  uint32_t D, N;
  Module M = test::makeChaseModule(D, N);
  const Function &F = M.Functions[0];
  DomTree DT = DomTree::forward(F);
  LoopInfo LI(F, DT);
  ASSERT_EQ(LI.loops().size(), 1u);
  // The chase pointer register is redefined in the loop.
  Reg P = F.Blocks[2].Insts[0].A.getReg();
  EXPECT_FALSE(LI.isLoopInvariantReg(0, P));
  // The condition register is defined in the loop too (header).
  // A register never defined in the loop is invariant.
  Reg Fresh = 100; // beyond any defined register? ensure valid index
  (void)Fresh;
  EXPECT_TRUE(LI.isLoopInvariantReg(0, F.NumRegs + 10));
}

TEST(ControlEquivalence, DiamondClasses) {
  Module M = makeDiamond();
  const Function &F = M.Functions[0];
  DomTree DT = DomTree::forward(F);
  DomTree PDT = DomTree::backward(F);
  ControlEquivalence CE(F, DT, PDT);
  // Entry and join always execute together; the two arms do not.
  EXPECT_TRUE(CE.equivalent(0, 3));
  EXPECT_FALSE(CE.equivalent(0, 1));
  EXPECT_FALSE(CE.equivalent(1, 2));
}

TEST(EquivalentLoads, GroupsSameBlockSameBase) {
  uint32_t D, N;
  Module M = test::makeChaseModule(D, N);
  const Function &F = M.Functions[0];
  DomTree DT = DomTree::forward(F);
  DomTree PDT = DomTree::backward(F);
  LoopInfo LI(F, DT);
  ControlEquivalence CE(F, DT, PDT);
  std::vector<EquivalentLoadSet> Sets = partitionEquivalentLoads(F, LI, CE);
  ASSERT_EQ(Sets.size(), 1u);
  EXPECT_EQ(Sets[0].Members.size(), 2u);
  // Representative is the smallest offset (the next-pointer load at +0).
  EXPECT_EQ(Sets[0].representative().Offset, 0);
}

TEST(EquivalentLoads, RedefinitionSplitsGroups) {
  // v = load p+8; p = load p+0; w = load p+8  -- the two +8 loads see
  // different p values and must not group.
  Module M;
  IRBuilder B(M);
  B.startFunction("main", 0);
  Reg P = B.movImm(0x1000);
  B.load(P, 8);
  B.load(P, 0, P);
  B.load(P, 8);
  B.halt();
  const Function &F = M.Functions[0];
  DomTree DT = DomTree::forward(F);
  DomTree PDT = DomTree::backward(F);
  LoopInfo LI(F, DT);
  ControlEquivalence CE(F, DT, PDT);
  std::vector<EquivalentLoadSet> Sets = partitionEquivalentLoads(F, LI, CE);
  // First two loads share the original P; the third is alone.
  ASSERT_EQ(Sets.size(), 2u);
  size_t Sizes[2] = {Sets[0].Members.size(), Sets[1].Members.size()};
  EXPECT_EQ(Sizes[0] + Sizes[1], 3u);
}

TEST(EquivalentLoads, CoverLoadsPickOnePerCacheLine) {
  EquivalentLoadSet Set;
  for (int64_t Off : {0, 8, 16, 64, 72, 130}) {
    LoadMember M;
    M.SiteId = static_cast<uint32_t>(Off);
    M.Offset = Off;
    Set.Members.push_back(M);
  }
  std::vector<LoadMember> Cover = Set.coverLoads(64);
  ASSERT_EQ(Cover.size(), 3u);
  EXPECT_EQ(Cover[0].Offset, 0);
  EXPECT_EQ(Cover[1].Offset, 64);
  EXPECT_EQ(Cover[2].Offset, 130);
}

TEST(CfgEdit, SplitEdgePreservesSemantics) {
  Module M = makeDiamond();
  Function &F = M.Functions[0];
  uint32_t NumBlocks = static_cast<uint32_t>(F.Blocks.size());
  uint32_t NewBlock = splitEdge(F, Edge{0, 0});
  EXPECT_EQ(NewBlock, NumBlocks);
  EXPECT_EQ(F.Blocks[0].successor(0), NewBlock);
  EXPECT_EQ(F.Blocks[NewBlock].successor(0), 1u);
  EXPECT_TRUE(isWellFormed(M));
}

TEST(CfgEdit, PlacementClassification) {
  Module M = makeDiamond();
  const Function &F = M.Functions[0];
  // left -> join: source has one successor.
  EXPECT_EQ(classifyEdgePlacement(F, Edge{1, 0}), EdgePlacement::SourceEnd);
  // entry -> left: two successors, but left has a single predecessor...
  // placement inserts at left's top.
  EXPECT_EQ(classifyEdgePlacement(F, Edge{0, 0}), EdgePlacement::DestTop);
}
