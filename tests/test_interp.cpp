//===- tests/test_interp.cpp - Interpreter unit tests -----------------------===//
//
// Part of the StrideProf project test suite.
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"
#include "ir/IRBuilder.h"

#include "TestHelpers.h"
#include <gtest/gtest.h>

using namespace sprof;

TEST(SimMemory, ReadsUnmappedAsZeroWithoutAllocating) {
  SimMemory M;
  EXPECT_EQ(M.read64(0xDEADBEEF), 0);
  EXPECT_EQ(M.numPages(), 0u);
  M.write64(0xDEADBEEF, 7);
  EXPECT_EQ(M.read64(0xDEADBEEF), 7);
  EXPECT_EQ(M.numPages(), 1u);
}

TEST(SimMemory, CopyIsIndependent) {
  SimMemory A;
  A.write64(0x100, 42);
  SimMemory B = A;
  B.write64(0x100, 7);
  EXPECT_EQ(A.read64(0x100), 42);
  EXPECT_EQ(B.read64(0x100), 7);
}

TEST(BumpAllocator, AlignsAndSkips) {
  BumpAllocator A(0x1000);
  uint64_t P1 = A.alloc(10, 8);
  EXPECT_EQ(P1, 0x1000u);
  uint64_t P2 = A.alloc(8, 64);
  EXPECT_EQ(P2 % 64, 0u);
  A.skip(100);
  uint64_t P3 = A.alloc(8, 8);
  EXPECT_GE(P3, P2 + 8 + 100);
}

namespace {

/// Runs a module with no memory system attached and returns the stats.
RunStats runFlat(const Module &M, SimMemory Mem = SimMemory()) {
  Interpreter I(M, std::move(Mem));
  return I.run();
}

} // namespace

TEST(Interpreter, ArithmeticAndExitValue) {
  Module M;
  IRBuilder B(M);
  B.startFunction("main", 0);
  Reg A = B.movImm(6);
  Reg Bv = B.movImm(7);
  Reg C = B.mul(Operand::reg(A), Operand::reg(Bv));
  Reg D = B.add(Operand::reg(C), Operand::imm(-2));
  B.ret(Operand::reg(D));
  RunStats S = runFlat(M);
  EXPECT_TRUE(S.Completed);
  EXPECT_EQ(S.ExitValue, 40);
}

TEST(Interpreter, LoadsStoresAndSiteCounts) {
  uint32_t DataSite = 0, NextSite = 0;
  Module M = test::makeChaseModule(DataSite, NextSite);
  SimMemory Mem;
  test::fillChaseList(Mem, 10, 64);
  RunStats S = runFlat(M, std::move(Mem));
  EXPECT_TRUE(S.Completed);
  EXPECT_EQ(S.LoadRefs, 20u);
  EXPECT_EQ(S.SiteCounts[DataSite], 10u);
  EXPECT_EQ(S.SiteCounts[NextSite], 10u);
}

TEST(Interpreter, CallsAndReturns) {
  Module M;
  IRBuilder B(M);
  uint32_t Sq = B.startFunction("square", 1);
  {
    Reg X = 0;
    Reg R = B.mul(Operand::reg(X), Operand::reg(X));
    B.ret(Operand::reg(R));
  }
  B.startFunction("main", 0);
  M.EntryFunction = 1;
  Reg R = B.call(Sq, {Operand::imm(9)}, B.newReg());
  B.ret(Operand::reg(R));
  RunStats S = runFlat(M);
  EXPECT_EQ(S.ExitValue, 81);
}

TEST(Interpreter, RecursionWorks) {
  // fact(n) = n <= 1 ? 1 : n * fact(n - 1)
  Module M;
  IRBuilder B(M);
  uint32_t Fact = B.startFunction("fact", 1);
  {
    Function &F = B.function();
    uint32_t BaseBB = F.newBlock("base");
    uint32_t RecBB = F.newBlock("rec");
    Reg N = 0;
    Reg C = B.cmp(Opcode::CmpLe, Operand::reg(N), Operand::imm(1));
    B.br(Operand::reg(C), BaseBB, RecBB);
    B.setBlock(BaseBB);
    B.ret(Operand::imm(1));
    B.setBlock(RecBB);
    Reg N1 = B.sub(Operand::reg(N), Operand::imm(1));
    Reg Sub = B.call(Fact, {Operand::reg(N1)}, B.newReg());
    Reg R = B.mul(Operand::reg(N), Operand::reg(Sub));
    B.ret(Operand::reg(R));
  }
  B.startFunction("main", 0);
  M.EntryFunction = 1;
  Reg R = B.call(Fact, {Operand::imm(6)}, B.newReg());
  B.ret(Operand::reg(R));
  RunStats S = runFlat(M);
  EXPECT_EQ(S.ExitValue, 720);
}

TEST(Interpreter, PredicationSquashes) {
  Module M;
  IRBuilder B(M);
  B.startFunction("main", 0);
  Reg PTrue = B.movImm(1);
  Reg PFalse = B.movImm(0);
  Reg V = B.movImm(5);
  // Predicated-on add executes; predicated-off add is squashed.
  Instruction I1;
  I1.Op = Opcode::Add;
  I1.Dst = V;
  I1.A = Operand::reg(V);
  I1.B = Operand::imm(10);
  I1.Pred = PTrue;
  B.insert(I1);
  Instruction I2 = I1;
  I2.B = Operand::imm(100);
  I2.Pred = PFalse;
  B.insert(I2);
  B.ret(Operand::reg(V));
  RunStats S = runFlat(M);
  EXPECT_EQ(S.ExitValue, 15);
}

TEST(Interpreter, CycleBucketsAreDisjoint) {
  uint32_t DS, NS;
  Module M = test::makeChaseModule(DS, NS);
  SimMemory Mem;
  test::fillChaseList(Mem, 100, 64);
  Interpreter I(M, std::move(Mem));
  MemoryHierarchy MH{MemoryConfig()};
  I.attachMemory(&MH);
  RunStats S = I.run();
  EXPECT_EQ(S.Cycles, S.BaseCycles + S.MemStallCycles +
                          S.InstrumentationCycles + S.RuntimeCycles);
  EXPECT_GT(S.MemStallCycles, 0u);
  EXPECT_EQ(S.InstrumentationCycles, 0u);
  EXPECT_EQ(S.RuntimeCycles, 0u);
}

TEST(Interpreter, PrefetchReducesStallCycles) {
  // Same chase twice: once plain, once with a prefetch two nodes ahead.
  for (int WithPrefetch = 0; WithPrefetch != 2; ++WithPrefetch) {
    Module M;
    IRBuilder B(M);
    B.startFunction("main", 0);
    Function &F = B.function();
    uint32_t Header = F.newBlock("head");
    uint32_t Body = F.newBlock("body");
    uint32_t Exit = F.newBlock("exit");
    Reg P = B.movImm(0x1000);
    B.jmp(Header);
    B.setBlock(Header);
    Reg C = B.cmp(Opcode::CmpNe, Operand::reg(P), Operand::imm(0));
    B.br(Operand::reg(C), Body, Exit);
    B.setBlock(Body);
    if (WithPrefetch)
      B.prefetch(P, 8 * 256); // eight strides ahead
    B.load(P, 8);
    // Busy work so the prefetch has time to complete.
    Reg W = B.movImm(1);
    for (int K = 0; K != 30; ++K)
      B.add(Operand::reg(W), Operand::imm(1), W);
    B.load(P, 0, P);
    B.jmp(Header);
    B.setBlock(Exit);
    B.halt();

    SimMemory Mem;
    test::fillChaseList(Mem, 4000, 256);
    Interpreter I(M, std::move(Mem));
    MemoryHierarchy MH{MemoryConfig()};
    I.attachMemory(&MH);
    RunStats S = I.run();
    static uint64_t PlainCycles = 0;
    if (!WithPrefetch)
      PlainCycles = S.Cycles;
    else
      EXPECT_LT(S.Cycles * 2, PlainCycles); // at least 2x faster
  }
}

TEST(Interpreter, MaxInstructionLimitStopsRunaways) {
  Module M;
  IRBuilder B(M);
  B.startFunction("main", 0);
  Function &F = B.function();
  uint32_t LoopBB = F.newBlock("spin");
  B.jmp(LoopBB);
  B.setBlock(LoopBB);
  B.jmp(LoopBB);
  Interpreter I(M, SimMemory());
  RunStats S = I.run(/*MaxInstructions=*/1000);
  EXPECT_FALSE(S.Completed);
  EXPECT_EQ(S.Instructions, 1000u);
}

TEST(Interpreter, ProfCountersAccumulate) {
  Module M;
  IRBuilder B(M);
  B.startFunction("main", 0);
  uint32_t Ctr = M.newCounter();
  for (int K = 0; K != 5; ++K) {
    Instruction I;
    I.Op = Opcode::ProfCounterInc;
    I.Imm = Ctr;
    I.IsInstrumentation = true;
    B.insert(I);
  }
  Instruction RD;
  RD.Op = Opcode::ProfCounterRead;
  RD.Dst = B.newReg();
  RD.Imm = Ctr;
  RD.IsInstrumentation = true;
  B.insert(RD);
  B.ret(Operand::reg(RD.Dst));
  Interpreter I(M, SimMemory());
  RunStats S = I.run();
  EXPECT_EQ(S.ExitValue, 5);
  EXPECT_EQ(I.counters()[Ctr], 5u);
  EXPECT_GT(S.InstrumentationCycles, 0u);
}
