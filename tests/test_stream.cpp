//===- tests/test_stream.cpp - Access-stream and trace capture/replay ------===//
//
// Part of the StrideProf project test suite.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The stream layer's contract: trace files round-trip every event bit for
/// bit (binary and text, including the ring-boundary batch sizes), read
/// errors come back as precise TraceError codes, the synthetic generators
/// are deterministic, and -- the load-bearing guarantee -- replaying a
/// capture of a live profile run reproduces the stride profile, classifier
/// verdicts, timed-run accounting, and attribution counters bit-identically
/// to the run that produced it, for every profiling method on both engines.
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "driver/TraceReplay.h"
#include "instrument/Instrumentation.h"
#include "interp/Interpreter.h"
#include "obs/Report.h"
#include "profile/ProfileData.h"
#include "profile/ProfileStore.h"
#include "profile/StrideProfiler.h"
#include "stream/AccessStream.h"
#include "stream/InterpreterSource.h"
#include "stream/SyntheticTrace.h"
#include "stream/TraceFile.h"
#include "workloads/TraceWorkload.h"
#include "workloads/Workload.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

using namespace sprof;

namespace {

PipelineConfig engineConfig(InterpreterConfig::Engine E) {
  PipelineConfig C;
  C.Interp.Exec = E;
  return C;
}

std::string tmpPath(const std::string &Name) {
  return ::testing::TempDir() + Name;
}

/// Pulls a source dry with a batch size that is coprime to the writer's
/// internal batching, so reader batches straddle writer batches.
std::vector<AccessEvent> drainAll(AccessSource &Src) {
  std::vector<AccessEvent> Out;
  AccessEvent Buf[97];
  while (size_t N = Src.pull(Buf, 97))
    Out.insert(Out.end(), Buf, Buf + N);
  return Out;
}

void expectSameEvents(const std::vector<AccessEvent> &Want,
                      const std::vector<AccessEvent> &Got) {
  ASSERT_EQ(Want.size(), Got.size());
  for (size_t I = 0; I != Want.size(); ++I) {
    SCOPED_TRACE("event " + std::to_string(I));
    EXPECT_EQ(Want[I].Address, Got[I].Address);
    EXPECT_EQ(Want[I].GlobalRefIndex, Got[I].GlobalRefIndex);
    EXPECT_EQ(Want[I].SiteId, Got[I].SiteId);
    EXPECT_EQ(Want[I].Kind, Got[I].Kind);
  }
}

/// A delta-encoder stress pattern: several interleaved sites, forward and
/// backward address deltas, occasional unknown ref indices, and a
/// prefetch-kind event every 16th entry.
std::vector<AccessEvent> patternEvents(size_t N) {
  std::vector<AccessEvent> Events;
  Events.reserve(N);
  uint64_t Addr = 0x100000;
  for (size_t I = 0; I != N; ++I) {
    AccessEvent E;
    Addr = I % 3 == 0 ? Addr - 48 : Addr + 64;
    E.Address = Addr;
    E.GlobalRefIndex = I % 11 == 0 ? 0 : I + 1;
    E.SiteId = static_cast<uint32_t>(I % 5);
    E.Kind = I % 16 == 9 ? AccessKind::Prefetch : AccessKind::Load;
    Events.push_back(E);
  }
  return Events;
}

/// Writes \p Events through a string-backed TraceWriter and decodes them
/// back, checking header and footer metadata along the way.
std::vector<AccessEvent> roundTrip(const std::vector<AccessEvent> &Events,
                                   uint32_t NumSites, bool Text) {
  std::stringstream SS;
  const TraceProvenance Prov{"unit.workload", "train", "edge-check"};
  {
    TraceWriter W(SS, NumSites, Prov, Text);
    W.onBatch(Events.data(), Events.size());
    W.finish();
    EXPECT_TRUE(W.ok()) << W.error();
    EXPECT_EQ(W.eventsWritten(), Events.size());
    EXPECT_GT(W.bytesWritten(), 0u);
  }
  TraceReader R(SS);
  EXPECT_TRUE(R.ok()) << R.error();
  EXPECT_EQ(R.text(), Text);
  EXPECT_EQ(R.version(), TraceFormatVersion);
  EXPECT_EQ(R.numSites(), NumSites);
  EXPECT_EQ(R.provenance().Workload, Prov.Workload);
  EXPECT_EQ(R.provenance().DataSet, Prov.DataSet);
  EXPECT_EQ(R.provenance().Method, Prov.Method);
  std::vector<AccessEvent> Out = drainAll(R);
  EXPECT_TRUE(R.ok()) << R.error();
  EXPECT_TRUE(R.atEnd());
  EXPECT_EQ(R.eventCount(), Events.size());
  return Out;
}

/// Every RunStats field, so a replay divergence names the broken bucket.
void expectSameStats(const RunStats &Live, const RunStats &Replayed) {
  EXPECT_EQ(Live.Completed, Replayed.Completed);
  EXPECT_EQ(Live.Instructions, Replayed.Instructions);
  EXPECT_EQ(Live.Cycles, Replayed.Cycles);
  EXPECT_EQ(Live.BaseCycles, Replayed.BaseCycles);
  EXPECT_EQ(Live.MemStallCycles, Replayed.MemStallCycles);
  EXPECT_EQ(Live.InstrumentationCycles, Replayed.InstrumentationCycles);
  EXPECT_EQ(Live.RuntimeCycles, Replayed.RuntimeCycles);
  EXPECT_EQ(Live.LoadRefs, Replayed.LoadRefs);
  EXPECT_EQ(Live.SiteCounts, Replayed.SiteCounts);
  EXPECT_EQ(Live.ExitValue, Replayed.ExitValue);
  ASSERT_EQ(Live.Mem.Levels.size(), Replayed.Mem.Levels.size());
  for (size_t L = 0; L != Live.Mem.Levels.size(); ++L) {
    EXPECT_EQ(Live.Mem.Levels[L].Hits, Replayed.Mem.Levels[L].Hits);
    EXPECT_EQ(Live.Mem.Levels[L].Misses, Replayed.Mem.Levels[L].Misses);
  }
  EXPECT_EQ(Live.Mem.DemandAccesses, Replayed.Mem.DemandAccesses);
  EXPECT_EQ(Live.Mem.PrefetchesIssued, Replayed.Mem.PrefetchesIssued);
}

} // namespace

//===----------------------------------------------------------------------===//
// Trace-file round-trips
//===----------------------------------------------------------------------===//

TEST(TraceFile, EmptyRoundTrip) {
  for (bool Text : {false, true}) {
    SCOPED_TRACE(Text ? "text" : "binary");
    expectSameEvents({}, roundTrip({}, 4, Text));
  }
}

TEST(TraceFile, SingleEventRoundTrip) {
  AccessEvent E;
  E.Address = 0xdeadbeef12345678ull;
  E.GlobalRefIndex = 42;
  E.SiteId = 7;
  E.Kind = AccessKind::Prefetch;
  for (bool Text : {false, true}) {
    SCOPED_TRACE(Text ? "text" : "binary");
    expectSameEvents({E}, roundTrip({E}, 8, Text));
  }
}

// The sizes that straddle the engines' stride-event ring (and the writer's
// internal batch): one below, exactly at, one above the default 256 window.
TEST(TraceFile, RingBoundaryRoundTrip) {
  for (size_t N : {size_t(255), size_t(256), size_t(257), size_t(1000)}) {
    const std::vector<AccessEvent> Events = patternEvents(N);
    for (bool Text : {false, true}) {
      SCOPED_TRACE((Text ? "text/" : "binary/") + std::to_string(N));
      expectSameEvents(Events, roundTrip(Events, 5, Text));
    }
  }
}

TEST(TraceFile, EdgeSectionRoundTrip) {
  EdgeProfile EP(2);
  EP.setEntryCount(0, 3);
  EP.setEntryCount(1, 41);
  EP.setFrequency(0, Edge{0, 0}, 17);
  EP.setFrequency(0, Edge{2, 1}, 0);
  EP.setFrequency(1, Edge{1, 0}, 9);
  const TraceEdgeSection S = edgeSectionFromProfile(EP);

  for (bool Text : {false, true}) {
    SCOPED_TRACE(Text ? "text" : "binary");
    std::stringstream SS;
    {
      TraceWriter W(SS, 1, {}, Text);
      W.setEdgeSection(S);
      AccessEvent E;
      E.Address = 0x2000;
      W.onBatch(&E, 1);
      W.finish();
      ASSERT_TRUE(W.ok()) << W.error();
    }
    TraceReader R(SS);
    AccessEvent Buf[8];
    EXPECT_EQ(R.pull(Buf, 8), 1u);
    EXPECT_EQ(R.pull(Buf, 8), 0u);
    ASSERT_TRUE(R.ok()) << R.error();
    ASSERT_TRUE(R.edgeSection().Present);
    const EdgeProfile Back = edgeProfileFromSection(R.edgeSection());
    EXPECT_EQ(edgeProfileToJson(Back).str(), edgeProfileToJson(EP).str());
  }
}

TEST(TraceFile, FileBackedResetReplaysTheStream) {
  const std::string Path = tmpPath("reset.sprof.trace");
  const std::vector<AccessEvent> Events = patternEvents(300);
  {
    std::string Err;
    auto W = TraceWriter::open(Path, 5, {}, /*Text=*/false, &Err);
    ASSERT_NE(W, nullptr) << Err;
    W->onBatch(Events.data(), Events.size());
    W->finish();
    ASSERT_TRUE(W->ok()) << W->error();
  }
  auto R = TraceReader::openFile(Path);
  ASSERT_TRUE(R->ok()) << R->error();
  expectSameEvents(Events, drainAll(*R));
  ASSERT_TRUE(R->reset());
  expectSameEvents(Events, drainAll(*R));
  EXPECT_TRUE(R->ok()) << R->error();
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Reader error paths
//===----------------------------------------------------------------------===//

TEST(TraceFile, MissingFileIsAnIoError) {
  auto R = TraceReader::openFile(tmpPath("no_such_trace.sprof.trace"));
  ASSERT_NE(R, nullptr);
  EXPECT_FALSE(R->ok());
  EXPECT_EQ(R->errorCode(), TraceError::Io);
  AccessEvent Buf[4];
  EXPECT_EQ(R->pull(Buf, 4), 0u);
}

TEST(TraceFile, ForeignBytesAreABadMagicError) {
  std::stringstream SS("{\"schema\": \"not a trace\"}\n");
  TraceReader R(SS);
  EXPECT_FALSE(R.ok());
  EXPECT_EQ(R.errorCode(), TraceError::BadMagic);
}

TEST(TraceFile, UnknownVersionIsAVersionMismatch) {
  std::stringstream SS;
  {
    TraceWriter W(SS, 2);
    const std::vector<AccessEvent> Events = patternEvents(4);
    W.onBatch(Events.data(), Events.size());
    W.finish();
    ASSERT_TRUE(W.ok());
  }
  std::string Data = SS.str();
  Data[8] = 0x63; // first byte of the little-endian version word
  std::istringstream Patched(Data);
  TraceReader R(Patched);
  EXPECT_FALSE(R.ok());
  EXPECT_EQ(R.errorCode(), TraceError::VersionMismatch);
}

TEST(TraceFile, CutStreamsAreTruncationErrors) {
  std::stringstream SS;
  {
    TraceWriter W(SS, 5);
    const std::vector<AccessEvent> Events = patternEvents(500);
    W.onBatch(Events.data(), Events.size());
    W.finish();
    ASSERT_TRUE(W.ok());
  }
  const std::string Data = SS.str();
  // Cut mid-events and cut inside the footer; both must be diagnosed as
  // truncation, not silently served as a shorter trace.
  for (size_t Keep : {Data.size() / 2, Data.size() - 9}) {
    SCOPED_TRACE("keep " + std::to_string(Keep));
    std::istringstream Cut(Data.substr(0, Keep));
    TraceReader R(Cut);
    ASSERT_TRUE(R.ok()) << R.error();
    drainAll(R);
    EXPECT_FALSE(R.ok());
    EXPECT_EQ(R.errorCode(), TraceError::Truncated);
    EXPECT_FALSE(R.atEnd());
  }
}

TEST(TraceReplay, ReadErrorsSurfaceThroughTheResult) {
  TraceReplayResult R =
      replayTraceFile(tmpPath("no_such_replay.sprof.trace"));
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.ErrorCode, TraceError::Io);
  EXPECT_FALSE(R.Error.empty());
}

//===----------------------------------------------------------------------===//
// Stream primitives and synthetic generators
//===----------------------------------------------------------------------===//

TEST(Stream, VectorSourceDrainAndTee) {
  const std::vector<AccessEvent> Events = patternEvents(300);
  VectorSource Src(Events, 5, "unit");
  CollectSink A, B;
  TeeSink Tee;
  Tee.add(&A);
  Tee.add(&B);
  EXPECT_EQ(drainStream(Src, Tee, 64), Events.size());
  expectSameEvents(Events, A.events());
  expectSameEvents(Events, B.events());
  // A drained source stays empty until reset().
  AccessEvent Buf[4];
  EXPECT_EQ(Src.pull(Buf, 4), 0u);
  ASSERT_TRUE(Src.reset());
  expectSameEvents(Events, drainAll(Src));
}

TEST(Stream, SyntheticGeneratorsAreDeterministic) {
  SyntheticTraceConfig Config;
  Config.Events = 4000;
  Config.Seed = 7;
  for (const std::string &Name : syntheticTraceNames()) {
    SCOPED_TRACE(Name);
    auto A = makeSyntheticTrace(Name, Config);
    auto B = makeSyntheticTrace(Name, Config);
    ASSERT_NE(A, nullptr);
    ASSERT_NE(B, nullptr);
    EXPECT_GT(A->numSites(), 0u);
    const std::vector<AccessEvent> EA = drainAll(*A);
    expectSameEvents(EA, drainAll(*B));
    // Events counts the loads; prefetch-kind events ride on top.
    size_t Loads = 0;
    for (const AccessEvent &E : EA) {
      Loads += E.Kind == AccessKind::Load;
      EXPECT_LT(E.SiteId, A->numSites());
    }
    EXPECT_EQ(Loads, Config.Events);
    // reset() replays the identical sequence.
    ASSERT_TRUE(A->reset());
    expectSameEvents(EA, drainAll(*A));
  }
  // stream-mixed is the kind-filtering fixture: it must contain prefetch
  // events for the Load-only profiler filter to have something to drop.
  auto Mixed = makeSyntheticTrace("stream-mixed", Config);
  ASSERT_NE(Mixed, nullptr);
  size_t Prefetches = 0;
  for (const AccessEvent &E : drainAll(*Mixed))
    Prefetches += E.Kind == AccessKind::Prefetch;
  EXPECT_GT(Prefetches, 0u);
}

TEST(Stream, TraceWorkloadRegistry) {
  EXPECT_EQ(traceWorkloadNames(), syntheticTraceNames());
  EXPECT_TRUE(isTraceWorkloadName("stream-seq"));
  EXPECT_TRUE(isTraceWorkloadName("trace:/tmp/whatever.sprof.trace"));
  EXPECT_FALSE(isTraceWorkloadName("181.mcf"));
  EXPECT_EQ(makeAccessSourceByName("no-such-stream"), nullptr);
  auto Src = makeAccessSourceByName("stream-chase");
  ASSERT_NE(Src, nullptr);
  EXPECT_GT(drainAll(*Src).size(), 0u);
  // A "trace:" name with an unreadable file still resolves (the error
  // lives in the reader), it just produces no events.
  auto Bad = makeAccessSourceByName("trace:" + tmpPath("missing.sprof.trace"));
  ASSERT_NE(Bad, nullptr);
  EXPECT_EQ(drainAll(*Bad).size(), 0u);
}

TEST(Stream, ProfilerConsumeDropsPrefetchKindEvents) {
  std::vector<AccessEvent> Events;
  for (size_t I = 0; I != 15; ++I) {
    AccessEvent E;
    E.Address = 0x1000 + 64 * I;
    E.SiteId = 0;
    E.Kind = I < 10 ? AccessKind::Load : AccessKind::Prefetch;
    Events.push_back(E);
  }
  VectorSource Src(std::move(Events), 1);
  StrideProfiler P(1, StrideProfilerConfig());
  P.consume(Src);
  EXPECT_EQ(P.totalInvocations(), 10u);
}

TEST(Stream, ReplayAccessStreamAccountsEveryEvent) {
  const std::vector<AccessEvent> Events = patternEvents(1000);
  size_t Loads = 0;
  for (const AccessEvent &E : Events)
    Loads += E.Kind == AccessKind::Load;
  VectorSource Src(Events, 5);
  MemoryHierarchy MH((MemoryConfig()));
  const StreamReplayStats S = replayAccessStream(MH, Src);
  EXPECT_EQ(S.Events, Events.size());
  EXPECT_EQ(S.Loads, Loads);
  EXPECT_EQ(S.Prefetches, Events.size() - Loads);
  EXPECT_EQ(MH.stats().DemandAccesses, Loads);
  EXPECT_GT(S.Cycles, 0u);
}

//===----------------------------------------------------------------------===//
// InterpreterSource: the engines as one source among several
//===----------------------------------------------------------------------===//

TEST(Stream, InterpreterSourceMatchesLiveProfiler) {
  for (auto Engine : {InterpreterConfig::Engine::Reference,
                      InterpreterConfig::Engine::Decoded}) {
    SCOPED_TRACE(Engine == InterpreterConfig::Engine::Reference
                     ? "reference"
                     : "decoded");
    uint32_t D, N;
    StrideProfilerConfig PC;
    PC.Sampling.Enabled = false;

    // Live: profiler attached to the run.
    Module MLive = test::makeChaseModule(D, N);
    instrumentModule(MLive, ProfilingMethod::EdgeCheck);
    SimMemory MemLive;
    test::fillChaseList(MemLive, 4096, 64);
    StrideProfiler Live(MLive.NumLoadSites, PC);
    InterpreterConfig IC;
    IC.Exec = Engine;
    Interpreter ILive(MLive, std::move(MemLive), TimingModel(), IC);
    ILive.attachProfiler(&Live);
    const RunStats LiveStats = ILive.run();
    ASSERT_TRUE(LiveStats.Completed);

    // Streamed: the same run wrapped as an AccessSource, consumed by a
    // fresh profiler.
    Module MSrc = test::makeChaseModule(D, N);
    instrumentModule(MSrc, ProfilingMethod::EdgeCheck);
    SimMemory MemSrc;
    test::fillChaseList(MemSrc, 4096, 64);
    Interpreter ISrc(MSrc, std::move(MemSrc), TimingModel(), IC);
    InterpreterSource Src(ISrc, MSrc.NumLoadSites);
    StrideProfiler Streamed(MSrc.NumLoadSites, PC);
    const uint64_t Cost = Streamed.consume(Src);

    ASSERT_TRUE(Src.ran());
    EXPECT_EQ(Src.stats().LoadRefs, LiveStats.LoadRefs);
    // The stream-driven profiler charges exactly what the live run booked
    // as runtime cycles, and harvests the identical profile.
    EXPECT_EQ(Cost, LiveStats.RuntimeCycles);
    EXPECT_EQ(Streamed.totalInvocations(), Live.totalInvocations());
    EXPECT_EQ(Streamed.totalProcessed(), Live.totalProcessed());
    EXPECT_EQ(Streamed.totalLfuCalls(), Live.totalLfuCalls());
    EXPECT_EQ(strideProfileToJson(StrideProfile::fromProfiler(Streamed)).str(),
              strideProfileToJson(StrideProfile::fromProfiler(Live)).str());
  }
}

//===----------------------------------------------------------------------===//
// Capture -> replay fidelity (the acceptance bar)
//===----------------------------------------------------------------------===//

// Every profiling method on both engines: a capture of the live profile
// run replays to a bit-identical stride profile, edge profile, and
// strideProf call accounting.
TEST(TraceReplay, ReplayedProfilesMatchLiveAcrossMethodsAndEngines) {
  std::unique_ptr<Workload> W = makeWorkloadByName("181.mcf");
  ASSERT_NE(W, nullptr);
  for (auto Engine : {InterpreterConfig::Engine::Reference,
                      InterpreterConfig::Engine::Decoded}) {
    for (ProfilingMethod Method : allProfilingMethods()) {
      const std::string Tag =
          std::string(Engine == InterpreterConfig::Engine::Reference
                          ? "reference"
                          : "decoded") +
          "/" + profilingMethodName(Method);
      SCOPED_TRACE(Tag);
      const std::string Path = tmpPath("diff_" +
                                       std::string(profilingMethodName(
                                           Method)) +
                                       (Engine ==
                                                InterpreterConfig::Engine::
                                                    Reference
                                            ? "_ref"
                                            : "_dec") +
                                       ".sprof.trace");

      PipelineConfig C = engineConfig(Engine);
      C.TraceCapturePath = Path;
      Pipeline P(*W, C);
      const ProfileRunResult Live =
          P.runProfile(Method, DataSet::Train, /*WithMemorySystem=*/false);
      ASSERT_TRUE(Live.Capture.Enabled);
      EXPECT_EQ(Live.Capture.Schema, TraceSchemaV1);
      // The capture records the complete pre-sampling invocation stream.
      EXPECT_EQ(Live.Capture.Events, Live.StrideInvocations);

      TraceReplayOptions Opts;
      Opts.Config = engineConfig(Engine);
      Opts.EvaluateWorkload = false;
      Opts.SimulateMemory = false;
      const TraceReplayResult Replay = replayTraceFile(Path, Opts);
      ASSERT_TRUE(Replay.Ok) << Replay.Error;
      EXPECT_EQ(Replay.Method, Method);
      EXPECT_EQ(Replay.Events, Live.StrideInvocations);

      EXPECT_EQ(strideProfileToJson(Replay.Profile.Strides).str(),
                strideProfileToJson(Live.Strides).str());
      EXPECT_EQ(edgeProfileToJson(Replay.Profile.Edges).str(),
                edgeProfileToJson(Live.Edges).str());
      EXPECT_EQ(Replay.Profile.StrideInvocations, Live.StrideInvocations);
      EXPECT_EQ(Replay.Profile.StrideProcessed, Live.StrideProcessed);
      EXPECT_EQ(Replay.Profile.LfuCalls, Live.LfuCalls);
      // The serialized store -- what experiments persist -- is identical.
      const ProfileStore LiveStore({W->info().Name,
                                    profilingMethodName(Method),
                                    dataSetName(DataSet::Train)},
                                   Live.Edges, Live.Strides);
      const ProfileStore ReplayStore({W->info().Name,
                                      profilingMethodName(Method),
                                      dataSetName(DataSet::Train)},
                                     Replay.Profile.Edges,
                                     Replay.Profile.Strides);
      EXPECT_EQ(LiveStore.toString(), ReplayStore.toString());
      std::remove(Path.c_str());
    }
  }
}

// The full-evaluation half: replaying a capture whose provenance names a
// rebuildable workload reproduces the baseline and prefetched timed runs
// -- cycle accounting, classifier verdicts, and prefetch-outcome
// attribution -- bit for bit, on both engines.
TEST(TraceReplay, FullEvaluationMatchesLivePipeline) {
  std::unique_ptr<Workload> W = makeWorkloadByName("181.mcf");
  ASSERT_NE(W, nullptr);
  for (auto Engine : {InterpreterConfig::Engine::Reference,
                      InterpreterConfig::Engine::Decoded}) {
    SCOPED_TRACE(Engine == InterpreterConfig::Engine::Reference
                     ? "reference"
                     : "decoded");
    const std::string Path =
        tmpPath(Engine == InterpreterConfig::Engine::Reference
                    ? "full_ref.sprof.trace"
                    : "full_dec.sprof.trace");
    PipelineConfig C = engineConfig(Engine);
    C.Memory.EnableAttribution = true;
    C.TraceCapturePath = Path;
    Pipeline P(*W, C);
    const ProfileRunResult Live =
        P.runProfile(ProfilingMethod::EdgeCheck, DataSet::Train,
                     /*WithMemorySystem=*/false);
    ASSERT_TRUE(Live.Capture.Enabled);
    const RunStats LiveBaseline = P.runBaseline(DataSet::Train);
    const TimedRunResult LiveTimed =
        P.runPrefetched(DataSet::Train, Live.Edges, Live.Strides);

    TraceReplayOptions Opts;
    Opts.Config = engineConfig(Engine);
    Opts.Config.Memory.EnableAttribution = true;
    Opts.SimulateMemory = false;
    const TraceReplayResult Replay = replayTraceFile(Path, Opts);
    ASSERT_TRUE(Replay.Ok) << Replay.Error;
    ASSERT_TRUE(Replay.HasWorkload);
    EXPECT_EQ(Replay.Prov.Workload, W->info().Name);

    expectSameStats(LiveBaseline, Replay.Baseline);
    expectSameStats(LiveTimed.Stats, Replay.Timed.Stats);
    EXPECT_EQ(feedbackToJson(Replay.Timed.Feedback, Replay.Profile.Strides,
                             Opts.Config.Classifier)
                  .str(),
              feedbackToJson(LiveTimed.Feedback, Live.Strides,
                             C.Classifier)
                  .str());
    ASSERT_TRUE(LiveTimed.Attribution.Enabled);
    ASSERT_TRUE(Replay.Timed.Attribution.Enabled);
    EXPECT_EQ(attributionToJson(Replay.Timed.Attribution).str(),
              attributionToJson(LiveTimed.Attribution).str());
    EXPECT_DOUBLE_EQ(Replay.Speedup,
                     static_cast<double>(LiveBaseline.Cycles) /
                         static_cast<double>(LiveTimed.Stats.Cycles));
    std::remove(Path.c_str());
  }
}

// Workload-less streams (the trace-backed family) get the stream-only
// path: stride profiling, per-site classification, and the two-pass cache
// simulation with synthesized prefetches.
TEST(TraceReplay, StreamOnlyReplaySimulatesPrefetching) {
  SyntheticTraceConfig Config;
  Config.Events = 20000;
  Config.Seed = 3;
  auto Src = makeSyntheticTrace("stream-seq", Config);
  ASSERT_NE(Src, nullptr);

  TraceReplayOptions Opts;
  const TraceReplayResult R = replayStream(*Src, Opts, "stream-seq");
  ASSERT_TRUE(R.Ok);
  EXPECT_FALSE(R.HasWorkload);
  ASSERT_TRUE(R.HasMemSim);
  EXPECT_GT(R.Profile.StrideInvocations, 0u);

  // stream-seq is one dominant stride per site: every site classifies,
  // and the synthesized prefetches must recover stall cycles.
  size_t Classified = 0;
  for (StrideClass SC : R.SiteClass)
    Classified += SC != StrideClass::None;
  EXPECT_GT(Classified, 0u);
  EXPECT_EQ(R.MemBaseline.Events, Config.Events);
  EXPECT_GT(R.MemBaseline.StallCycles, 0u);
  EXPECT_GT(R.MemPrefetched.Prefetches, 0u);
  EXPECT_LT(R.MemPrefetched.StallCycles, R.MemBaseline.StallCycles);
}
