//===- tests/test_stream.cpp - Access-stream and trace capture/replay ------===//
//
// Part of the StrideProf project test suite.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The stream layer's contract: trace files round-trip every event bit for
/// bit (binary and text, including the ring-boundary batch sizes), read
/// errors come back as precise TraceError codes, the synthetic generators
/// are deterministic, and -- the load-bearing guarantee -- replaying a
/// capture of a live profile run reproduces the stride profile, classifier
/// verdicts, timed-run accounting, and attribution counters bit-identically
/// to the run that produced it, for every profiling method on both engines.
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "driver/TraceReplay.h"
#include "instrument/Instrumentation.h"
#include "interp/Interpreter.h"
#include "obs/Report.h"
#include "profile/ProfileData.h"
#include "profile/ProfileStore.h"
#include "profile/StrideProfiler.h"
#include "stream/AccessStream.h"
#include "stream/InterpreterSource.h"
#include "stream/SyntheticTrace.h"
#include "stream/TraceFile.h"
#include "workloads/TraceWorkload.h"
#include "workloads/Workload.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

using namespace sprof;

namespace {

PipelineConfig engineConfig(InterpreterConfig::Engine E) {
  PipelineConfig C;
  C.Interp.Exec = E;
  return C;
}

std::string tmpPath(const std::string &Name) {
  return ::testing::TempDir() + Name;
}

/// Pulls a source dry with a batch size that is coprime to the writer's
/// internal batching, so reader batches straddle writer batches.
std::vector<AccessEvent> drainAll(AccessSource &Src) {
  std::vector<AccessEvent> Out;
  AccessEvent Buf[97];
  while (size_t N = Src.pull(Buf, 97))
    Out.insert(Out.end(), Buf, Buf + N);
  return Out;
}

void expectSameEvents(const std::vector<AccessEvent> &Want,
                      const std::vector<AccessEvent> &Got) {
  ASSERT_EQ(Want.size(), Got.size());
  for (size_t I = 0; I != Want.size(); ++I) {
    SCOPED_TRACE("event " + std::to_string(I));
    EXPECT_EQ(Want[I].Address, Got[I].Address);
    EXPECT_EQ(Want[I].GlobalRefIndex, Got[I].GlobalRefIndex);
    EXPECT_EQ(Want[I].SiteId, Got[I].SiteId);
    EXPECT_EQ(Want[I].Kind, Got[I].Kind);
  }
}

/// A delta-encoder stress pattern: several interleaved sites, forward and
/// backward address deltas, occasional unknown ref indices, and a
/// prefetch-kind event every 16th entry.
std::vector<AccessEvent> patternEvents(size_t N) {
  std::vector<AccessEvent> Events;
  Events.reserve(N);
  uint64_t Addr = 0x100000;
  for (size_t I = 0; I != N; ++I) {
    AccessEvent E;
    Addr = I % 3 == 0 ? Addr - 48 : Addr + 64;
    E.Address = Addr;
    E.GlobalRefIndex = I % 11 == 0 ? 0 : I + 1;
    E.SiteId = static_cast<uint32_t>(I % 5);
    E.Kind = I % 16 == 9 ? AccessKind::Prefetch : AccessKind::Load;
    Events.push_back(E);
  }
  return Events;
}

/// Writes \p Events through a string-backed TraceWriter and decodes them
/// back, checking header and footer metadata along the way.
std::vector<AccessEvent> roundTrip(const std::vector<AccessEvent> &Events,
                                   uint32_t NumSites, bool Text) {
  std::stringstream SS;
  const TraceProvenance Prov{"unit.workload", "train", "edge-check"};
  {
    TraceWriter W(SS, NumSites, Prov, Text);
    W.onBatch(Events.data(), Events.size());
    W.finish();
    EXPECT_TRUE(W.ok()) << W.error();
    EXPECT_EQ(W.eventsWritten(), Events.size());
    EXPECT_GT(W.bytesWritten(), 0u);
  }
  TraceReader R(SS);
  EXPECT_TRUE(R.ok()) << R.error();
  EXPECT_EQ(R.text(), Text);
  EXPECT_EQ(R.version(), Text ? 1u : TraceFormatVersion);
  EXPECT_EQ(R.numSites(), NumSites);
  EXPECT_EQ(R.provenance().Workload, Prov.Workload);
  EXPECT_EQ(R.provenance().DataSet, Prov.DataSet);
  EXPECT_EQ(R.provenance().Method, Prov.Method);
  std::vector<AccessEvent> Out = drainAll(R);
  EXPECT_TRUE(R.ok()) << R.error();
  EXPECT_TRUE(R.atEnd());
  EXPECT_EQ(R.eventCount(), Events.size());
  return Out;
}

/// Every RunStats field, so a replay divergence names the broken bucket.
void expectSameStats(const RunStats &Live, const RunStats &Replayed) {
  EXPECT_EQ(Live.Completed, Replayed.Completed);
  EXPECT_EQ(Live.Instructions, Replayed.Instructions);
  EXPECT_EQ(Live.Cycles, Replayed.Cycles);
  EXPECT_EQ(Live.BaseCycles, Replayed.BaseCycles);
  EXPECT_EQ(Live.MemStallCycles, Replayed.MemStallCycles);
  EXPECT_EQ(Live.InstrumentationCycles, Replayed.InstrumentationCycles);
  EXPECT_EQ(Live.RuntimeCycles, Replayed.RuntimeCycles);
  EXPECT_EQ(Live.LoadRefs, Replayed.LoadRefs);
  EXPECT_EQ(Live.SiteCounts, Replayed.SiteCounts);
  EXPECT_EQ(Live.ExitValue, Replayed.ExitValue);
  ASSERT_EQ(Live.Mem.Levels.size(), Replayed.Mem.Levels.size());
  for (size_t L = 0; L != Live.Mem.Levels.size(); ++L) {
    EXPECT_EQ(Live.Mem.Levels[L].Hits, Replayed.Mem.Levels[L].Hits);
    EXPECT_EQ(Live.Mem.Levels[L].Misses, Replayed.Mem.Levels[L].Misses);
  }
  EXPECT_EQ(Live.Mem.DemandAccesses, Replayed.Mem.DemandAccesses);
  EXPECT_EQ(Live.Mem.PrefetchesIssued, Replayed.Mem.PrefetchesIssued);
}

} // namespace

//===----------------------------------------------------------------------===//
// Trace-file round-trips
//===----------------------------------------------------------------------===//

TEST(TraceFile, EmptyRoundTrip) {
  for (bool Text : {false, true}) {
    SCOPED_TRACE(Text ? "text" : "binary");
    expectSameEvents({}, roundTrip({}, 4, Text));
  }
}

TEST(TraceFile, SingleEventRoundTrip) {
  AccessEvent E;
  E.Address = 0xdeadbeef12345678ull;
  E.GlobalRefIndex = 42;
  E.SiteId = 7;
  E.Kind = AccessKind::Prefetch;
  for (bool Text : {false, true}) {
    SCOPED_TRACE(Text ? "text" : "binary");
    expectSameEvents({E}, roundTrip({E}, 8, Text));
  }
}

// The sizes that straddle the engines' stride-event ring (and the writer's
// internal batch): one below, exactly at, one above the default 256 window.
TEST(TraceFile, RingBoundaryRoundTrip) {
  for (size_t N : {size_t(255), size_t(256), size_t(257), size_t(1000)}) {
    const std::vector<AccessEvent> Events = patternEvents(N);
    for (bool Text : {false, true}) {
      SCOPED_TRACE((Text ? "text/" : "binary/") + std::to_string(N));
      expectSameEvents(Events, roundTrip(Events, 5, Text));
    }
  }
}

TEST(TraceFile, EdgeSectionRoundTrip) {
  EdgeProfile EP(2);
  EP.setEntryCount(0, 3);
  EP.setEntryCount(1, 41);
  EP.setFrequency(0, Edge{0, 0}, 17);
  EP.setFrequency(0, Edge{2, 1}, 0);
  EP.setFrequency(1, Edge{1, 0}, 9);
  const TraceEdgeSection S = edgeSectionFromProfile(EP);

  for (bool Text : {false, true}) {
    SCOPED_TRACE(Text ? "text" : "binary");
    std::stringstream SS;
    {
      TraceWriter W(SS, 1, {}, Text);
      W.setEdgeSection(S);
      AccessEvent E;
      E.Address = 0x2000;
      W.onBatch(&E, 1);
      W.finish();
      ASSERT_TRUE(W.ok()) << W.error();
    }
    TraceReader R(SS);
    AccessEvent Buf[8];
    EXPECT_EQ(R.pull(Buf, 8), 1u);
    EXPECT_EQ(R.pull(Buf, 8), 0u);
    ASSERT_TRUE(R.ok()) << R.error();
    ASSERT_TRUE(R.edgeSection().Present);
    const EdgeProfile Back = edgeProfileFromSection(R.edgeSection());
    EXPECT_EQ(edgeProfileToJson(Back).str(), edgeProfileToJson(EP).str());
  }
}

TEST(TraceFile, FileBackedResetReplaysTheStream) {
  const std::string Path = tmpPath("reset.sprof.trace");
  const std::vector<AccessEvent> Events = patternEvents(300);
  {
    std::string Err;
    auto W = TraceWriter::open(Path, 5, {}, /*Text=*/false, &Err);
    ASSERT_NE(W, nullptr) << Err;
    W->onBatch(Events.data(), Events.size());
    W->finish();
    ASSERT_TRUE(W->ok()) << W->error();
  }
  auto R = TraceReader::openFile(Path);
  ASSERT_TRUE(R->ok()) << R->error();
  expectSameEvents(Events, drainAll(*R));
  ASSERT_TRUE(R->reset());
  expectSameEvents(Events, drainAll(*R));
  EXPECT_TRUE(R->ok()) << R->error();
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// The /2 shard index: seekable open and independent chunk decode
//===----------------------------------------------------------------------===//

TEST(TraceFile, ShardIndexRoundTripAndShardDecode) {
  const std::string Path = tmpPath("indexed.sprof.trace");
  const std::vector<AccessEvent> Events = patternEvents(1000);
  size_t Loads = 0;
  for (const AccessEvent &E : Events)
    Loads += E.Kind == AccessKind::Load;
  {
    std::string Err;
    auto W = TraceWriter::open(Path, 5, {}, /*Text=*/false, &Err,
                               /*IndexInterval=*/64);
    ASSERT_NE(W, nullptr) << Err;
    EXPECT_EQ(W->version(), 2u);
    EXPECT_STREQ(W->schema(), TraceSchemaV2);
    W->onBatch(Events.data(), Events.size());
    W->finish();
    ASSERT_TRUE(W->ok()) << W->error();
  }

  // Sequential decode still works and sees the index once the footer is in.
  {
    auto R = TraceReader::openFile(Path);
    ASSERT_TRUE(R->ok()) << R->error();
    expectSameEvents(Events, drainAll(*R));
    ASSERT_TRUE(R->ok()) << R->error();
    EXPECT_TRUE(R->index().Present);
  }

  // Indexed open reaches the footer without decoding any event.
  auto R = TraceReader::openFileIndexed(Path);
  ASSERT_TRUE(R->ok()) << R->error();
  EXPECT_TRUE(R->atEnd());
  const TraceShardIndex &Idx = R->index();
  ASSERT_TRUE(Idx.Present);
  EXPECT_EQ(Idx.Interval, 64u);
  EXPECT_EQ(Idx.TotalEvents, Events.size());
  EXPECT_EQ(Idx.TotalLoads, Loads);
  EXPECT_EQ(Idx.numChunks(), (Events.size() + 63) / 64);
  EXPECT_EQ(Idx.Chunks[0].CumEvents, 0u);
  EXPECT_EQ(Idx.Chunks[0].PrevAddr, 0u);

  // Every chunk range decodes exactly its slice of the stream, from any
  // starting chunk, with no context from earlier chunks.
  for (size_t First = 0; First < Idx.numChunks(); First += 3) {
    SCOPED_TRACE("first chunk " + std::to_string(First));
    const size_t N = std::min<size_t>(3, Idx.numChunks() - First);
    auto SR = TraceReader::openShard(Path, Idx, First, N);
    ASSERT_TRUE(SR->ok()) << SR->error();
    const std::vector<AccessEvent> Got = drainAll(*SR);
    ASSERT_TRUE(SR->ok()) << SR->error();
    EXPECT_TRUE(SR->atEnd());
    const size_t Base = First * 64;
    const size_t Want = std::min<size_t>(Events.size() - Base, N * 64);
    ASSERT_EQ(Got.size(), Want);
    expectSameEvents({Events.begin() + Base, Events.begin() + Base + Want},
                     Got);
    // Shard readers cannot rewind: the carried state is gone.
    EXPECT_FALSE(SR->reset());
  }

  // A shard range outside the index is rejected, not clamped.
  auto Bad = TraceReader::openShard(Path, Idx, Idx.numChunks(), 1);
  EXPECT_FALSE(Bad->ok());
  EXPECT_EQ(Bad->errorCode(), TraceError::Corrupt);
  std::remove(Path.c_str());
}

// IndexInterval 0 turns the index off and produces a version-1 container:
// the compatibility escape hatch, and the regression proof that /1 files
// remain readable unchanged.
TEST(TraceFile, IndexIntervalZeroWritesVersion1) {
  const std::string Path = tmpPath("v1compat.sprof.trace");
  const std::vector<AccessEvent> Events = patternEvents(300);
  {
    std::string Err;
    auto W = TraceWriter::open(Path, 5, {}, /*Text=*/false, &Err,
                               /*IndexInterval=*/0);
    ASSERT_NE(W, nullptr) << Err;
    EXPECT_EQ(W->version(), 1u);
    EXPECT_STREQ(W->schema(), TraceSchemaV1);
    W->onBatch(Events.data(), Events.size());
    W->finish();
    ASSERT_TRUE(W->ok()) << W->error();
  }
  auto R = TraceReader::openFile(Path);
  ASSERT_TRUE(R->ok()) << R->error();
  EXPECT_EQ(R->version(), 1u);
  expectSameEvents(Events, drainAll(*R));
  ASSERT_TRUE(R->ok()) << R->error();
  EXPECT_TRUE(R->atEnd());
  EXPECT_FALSE(R->index().Present);

  // Indexed open hands a /1 file back positioned for sequential decode.
  auto RI = TraceReader::openFileIndexed(Path);
  ASSERT_TRUE(RI->ok()) << RI->error();
  EXPECT_FALSE(RI->index().Present);
  expectSameEvents(Events, drainAll(*RI));
  EXPECT_TRUE(RI->ok()) << RI->error();
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Reader error paths
//===----------------------------------------------------------------------===//

TEST(TraceFile, MissingFileIsAnIoError) {
  auto R = TraceReader::openFile(tmpPath("no_such_trace.sprof.trace"));
  ASSERT_NE(R, nullptr);
  EXPECT_FALSE(R->ok());
  EXPECT_EQ(R->errorCode(), TraceError::Io);
  AccessEvent Buf[4];
  EXPECT_EQ(R->pull(Buf, 4), 0u);
}

TEST(TraceFile, ForeignBytesAreABadMagicError) {
  std::stringstream SS("{\"schema\": \"not a trace\"}\n");
  TraceReader R(SS);
  EXPECT_FALSE(R.ok());
  EXPECT_EQ(R.errorCode(), TraceError::BadMagic);
}

TEST(TraceFile, UnknownVersionIsAVersionMismatch) {
  std::stringstream SS;
  {
    TraceWriter W(SS, 2);
    const std::vector<AccessEvent> Events = patternEvents(4);
    W.onBatch(Events.data(), Events.size());
    W.finish();
    ASSERT_TRUE(W.ok());
  }
  std::string Data = SS.str();
  Data[8] = 0x63; // first byte of the little-endian version word
  std::istringstream Patched(Data);
  TraceReader R(Patched);
  EXPECT_FALSE(R.ok());
  EXPECT_EQ(R.errorCode(), TraceError::VersionMismatch);
}

TEST(TraceFile, CutStreamsAreTruncationErrors) {
  std::stringstream SS;
  {
    TraceWriter W(SS, 5);
    const std::vector<AccessEvent> Events = patternEvents(500);
    W.onBatch(Events.data(), Events.size());
    W.finish();
    ASSERT_TRUE(W.ok());
  }
  const std::string Data = SS.str();
  // Cut mid-events and cut inside the footer; both must be diagnosed as
  // truncation, not silently served as a shorter trace.
  for (size_t Keep : {Data.size() / 2, Data.size() - 9}) {
    SCOPED_TRACE("keep " + std::to_string(Keep));
    std::istringstream Cut(Data.substr(0, Keep));
    TraceReader R(Cut);
    ASSERT_TRUE(R.ok()) << R.error();
    drainAll(R);
    EXPECT_FALSE(R.ok());
    EXPECT_EQ(R.errorCode(), TraceError::Truncated);
    EXPECT_FALSE(R.atEnd());
  }
}

// The seekable tail's two failure modes: a chopped-off tail (unfinished or
// truncated capture) and an offset word that no longer points at the
// end-of-events marker (bit rot). Both must be loud, typed errors.
TEST(TraceFile, IndexedOpenRejectsDamagedTails) {
  std::stringstream SS;
  {
    TraceWriter W(SS, 5, {}, /*Text=*/false, /*IndexInterval=*/32);
    const std::vector<AccessEvent> Events = patternEvents(200);
    W.onBatch(Events.data(), Events.size());
    W.finish();
    ASSERT_TRUE(W.ok()) << W.error();
  }
  const std::string Data = SS.str();

  const std::string Path = tmpPath("damaged.sprof.trace");
  auto WriteFile = [&](const std::string &Bytes) {
    std::ofstream F(Path, std::ios::binary | std::ios::trunc);
    F.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
  };

  // Healthy copy: baseline, and the EventsStart we corrupt towards below.
  WriteFile(Data);
  uint64_t EventsStart = 0;
  {
    auto R = TraceReader::openFileIndexed(Path);
    ASSERT_TRUE(R->ok()) << R->error();
    ASSERT_TRUE(R->index().Present);
    EventsStart = R->index().EventsStart;
  }

  // Tail cut off -> Truncated.
  WriteFile(Data.substr(0, Data.size() - 4));
  {
    auto R = TraceReader::openFileIndexed(Path);
    EXPECT_FALSE(R->ok());
    EXPECT_EQ(R->errorCode(), TraceError::Truncated);
  }

  // Offset word redirected at the first event record (a valid in-range
  // offset whose byte is an event tag, not the end marker) -> Corrupt.
  {
    std::string Bad = Data;
    const size_t WordAt = Bad.size() - 16;
    for (int I = 0; I < 8; ++I)
      Bad[WordAt + I] = static_cast<char>((EventsStart >> (8 * I)) & 0xff);
    WriteFile(Bad);
    auto R = TraceReader::openFileIndexed(Path);
    EXPECT_FALSE(R->ok());
    EXPECT_EQ(R->errorCode(), TraceError::Corrupt);
  }

  // Offset word pointing past the file -> Corrupt.
  {
    std::string Bad = Data;
    Bad[Bad.size() - 16] = static_cast<char>(0xff);
    Bad[Bad.size() - 15] = static_cast<char>(0xff);
    Bad[Bad.size() - 14] = static_cast<char>(0xff);
    WriteFile(Bad);
    auto R = TraceReader::openFileIndexed(Path);
    EXPECT_FALSE(R->ok());
    EXPECT_EQ(R->errorCode(), TraceError::Corrupt);
  }
  std::remove(Path.c_str());
}

namespace {

/// A sink that accepts \p Limit bytes and then refuses everything: the
/// deterministic stand-in for ENOSPC / a closed pipe.
class ChokedBuf : public std::streambuf {
public:
  explicit ChokedBuf(size_t Limit) : Limit(Limit) {}

private:
  int_type overflow(int_type Ch) override {
    if (Written >= Limit)
      return traits_type::eof();
    ++Written;
    return Ch;
  }
  std::streamsize xsputn(const char *, std::streamsize N) override {
    if (Written + static_cast<size_t>(N) > Limit)
      return 0; // short write
    Written += static_cast<size_t>(N);
    return N;
  }
  size_t Limit;
  size_t Written = 0;
};

} // namespace

// The ENOSPC regression: a sink that stops accepting bytes mid-stream must
// flip the writer into a reported failure -- at the batch that hit the
// short write, or at the latest in finish() -- never silently produce a
// truncated trace that claims ok().
TEST(TraceFile, WriterReportsSinkFailures) {
  const std::vector<AccessEvent> Events = patternEvents(5000);
  for (size_t Limit : {size_t(0), size_t(64), size_t(4096)}) {
    SCOPED_TRACE("limit " + std::to_string(Limit));
    ChokedBuf Choked(Limit);
    std::ostream OS(&Choked);
    TraceWriter W(OS, 5);
    W.onBatch(Events.data(), Events.size());
    W.finish();
    EXPECT_FALSE(W.ok());
    EXPECT_NE(W.error().find("write failure"), std::string::npos)
        << W.error();
  }
}

//===----------------------------------------------------------------------===//
// Text access-log import
//===----------------------------------------------------------------------===//

TEST(TraceFile, ImportAccessLogRoundTrip) {
  const std::string Path = tmpPath("imported.sprof.trace");
  std::istringstream Log("# cacheSight-style access log\n"
                         "0x1000, 0, L\n"
                         " 0x1040 ,0, load\n"
                         "4242, 3, P\n"
                         "\n"
                         "0x1080, 0, l\n");
  std::string Err;
  auto Res = importAccessLog(Log, Path, &Err);
  ASSERT_TRUE(Res.has_value()) << Err;
  EXPECT_EQ(Res->Events, 4u);
  EXPECT_EQ(Res->Loads, 3u);
  EXPECT_EQ(Res->Prefetches, 1u);
  EXPECT_EQ(Res->NumSites, 4u);
  EXPECT_GT(Res->Bytes, 0u);

  auto R = TraceReader::openFile(Path);
  ASSERT_TRUE(R->ok()) << R->error();
  EXPECT_EQ(R->version(), TraceFormatVersion);
  const std::vector<AccessEvent> Events = drainAll(*R);
  ASSERT_TRUE(R->ok()) << R->error();
  ASSERT_EQ(Events.size(), 4u);
  EXPECT_EQ(Events[0].Address, 0x1000u);
  EXPECT_EQ(Events[0].SiteId, 0u);
  EXPECT_EQ(Events[0].Kind, AccessKind::Load);
  EXPECT_EQ(Events[0].GlobalRefIndex, 1u);
  EXPECT_EQ(Events[1].Address, 0x1040u);
  EXPECT_EQ(Events[2].Address, 4242u);
  EXPECT_EQ(Events[2].SiteId, 3u);
  EXPECT_EQ(Events[2].Kind, AccessKind::Prefetch);
  EXPECT_EQ(Events[3].GlobalRefIndex, 4u);

  // The import is a real /2 file: indexed open finds the shard index, so
  // imported logs replay in parallel like native captures.
  auto RI = TraceReader::openFileIndexed(Path);
  ASSERT_TRUE(RI->ok()) << RI->error();
  EXPECT_TRUE(RI->index().Present);
  std::remove(Path.c_str());

  // Malformed input is rejected with the offending line named.
  std::istringstream BadKind("0x10, 0, L\n0x20, 1, X\n");
  EXPECT_FALSE(importAccessLog(BadKind, tmpPath("bad.sprof.trace"), &Err));
  EXPECT_NE(Err.find("line 2"), std::string::npos) << Err;
  std::istringstream BadShape("0x10\n");
  EXPECT_FALSE(importAccessLog(BadShape, tmpPath("bad.sprof.trace"), &Err));
  EXPECT_NE(Err.find("line 1"), std::string::npos) << Err;
}

TEST(TraceReplay, ReadErrorsSurfaceThroughTheResult) {
  TraceReplayResult R =
      replayTraceFile(tmpPath("no_such_replay.sprof.trace"));
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.ErrorCode, TraceError::Io);
  EXPECT_FALSE(R.Error.empty());
}

//===----------------------------------------------------------------------===//
// Stream primitives and synthetic generators
//===----------------------------------------------------------------------===//

TEST(Stream, VectorSourceDrainAndTee) {
  const std::vector<AccessEvent> Events = patternEvents(300);
  VectorSource Src(Events, 5, "unit");
  CollectSink A, B;
  TeeSink Tee;
  Tee.add(&A);
  Tee.add(&B);
  EXPECT_EQ(drainStream(Src, Tee, 64), Events.size());
  expectSameEvents(Events, A.events());
  expectSameEvents(Events, B.events());
  // A drained source stays empty until reset().
  AccessEvent Buf[4];
  EXPECT_EQ(Src.pull(Buf, 4), 0u);
  ASSERT_TRUE(Src.reset());
  expectSameEvents(Events, drainAll(Src));
}

TEST(Stream, SyntheticGeneratorsAreDeterministic) {
  SyntheticTraceConfig Config;
  Config.Events = 4000;
  Config.Seed = 7;
  for (const std::string &Name : syntheticTraceNames()) {
    SCOPED_TRACE(Name);
    auto A = makeSyntheticTrace(Name, Config);
    auto B = makeSyntheticTrace(Name, Config);
    ASSERT_NE(A, nullptr);
    ASSERT_NE(B, nullptr);
    EXPECT_GT(A->numSites(), 0u);
    const std::vector<AccessEvent> EA = drainAll(*A);
    expectSameEvents(EA, drainAll(*B));
    // Events counts the loads; prefetch-kind events ride on top.
    size_t Loads = 0;
    for (const AccessEvent &E : EA) {
      Loads += E.Kind == AccessKind::Load;
      EXPECT_LT(E.SiteId, A->numSites());
    }
    EXPECT_EQ(Loads, Config.Events);
    // reset() replays the identical sequence.
    ASSERT_TRUE(A->reset());
    expectSameEvents(EA, drainAll(*A));
  }
  // stream-mixed is the kind-filtering fixture: it must contain prefetch
  // events for the Load-only profiler filter to have something to drop.
  auto Mixed = makeSyntheticTrace("stream-mixed", Config);
  ASSERT_NE(Mixed, nullptr);
  size_t Prefetches = 0;
  for (const AccessEvent &E : drainAll(*Mixed))
    Prefetches += E.Kind == AccessKind::Prefetch;
  EXPECT_GT(Prefetches, 0u);
}

TEST(Stream, TraceWorkloadRegistry) {
  EXPECT_EQ(traceWorkloadNames(), syntheticTraceNames());
  EXPECT_TRUE(isTraceWorkloadName("stream-seq"));
  EXPECT_TRUE(isTraceWorkloadName("trace:/tmp/whatever.sprof.trace"));
  EXPECT_FALSE(isTraceWorkloadName("181.mcf"));
  EXPECT_EQ(makeAccessSourceByName("no-such-stream"), nullptr);
  auto Src = makeAccessSourceByName("stream-chase");
  ASSERT_NE(Src, nullptr);
  EXPECT_GT(drainAll(*Src).size(), 0u);
  // A "trace:" name with an unreadable file still resolves (the error
  // lives in the reader), it just produces no events.
  auto Bad = makeAccessSourceByName("trace:" + tmpPath("missing.sprof.trace"));
  ASSERT_NE(Bad, nullptr);
  EXPECT_EQ(drainAll(*Bad).size(), 0u);
}

TEST(Stream, ProfilerConsumeDropsPrefetchKindEvents) {
  std::vector<AccessEvent> Events;
  for (size_t I = 0; I != 15; ++I) {
    AccessEvent E;
    E.Address = 0x1000 + 64 * I;
    E.SiteId = 0;
    E.Kind = I < 10 ? AccessKind::Load : AccessKind::Prefetch;
    Events.push_back(E);
  }
  VectorSource Src(std::move(Events), 1);
  StrideProfiler P(1, StrideProfilerConfig());
  P.consume(Src);
  EXPECT_EQ(P.totalInvocations(), 10u);
}

TEST(Stream, ReplayAccessStreamAccountsEveryEvent) {
  const std::vector<AccessEvent> Events = patternEvents(1000);
  size_t Loads = 0;
  for (const AccessEvent &E : Events)
    Loads += E.Kind == AccessKind::Load;
  VectorSource Src(Events, 5);
  MemoryHierarchy MH((MemoryConfig()));
  const StreamReplayStats S = replayAccessStream(MH, Src);
  EXPECT_EQ(S.Events, Events.size());
  EXPECT_EQ(S.Loads, Loads);
  EXPECT_EQ(S.Prefetches, Events.size() - Loads);
  EXPECT_EQ(MH.stats().DemandAccesses, Loads);
  EXPECT_GT(S.Cycles, 0u);
}

//===----------------------------------------------------------------------===//
// InterpreterSource: the engines as one source among several
//===----------------------------------------------------------------------===//

TEST(Stream, InterpreterSourceMatchesLiveProfiler) {
  for (auto Engine : {InterpreterConfig::Engine::Reference,
                      InterpreterConfig::Engine::Decoded}) {
    SCOPED_TRACE(Engine == InterpreterConfig::Engine::Reference
                     ? "reference"
                     : "decoded");
    uint32_t D, N;
    StrideProfilerConfig PC;
    PC.Sampling.Enabled = false;

    // Live: profiler attached to the run.
    Module MLive = test::makeChaseModule(D, N);
    instrumentModule(MLive, ProfilingMethod::EdgeCheck);
    SimMemory MemLive;
    test::fillChaseList(MemLive, 4096, 64);
    StrideProfiler Live(MLive.NumLoadSites, PC);
    InterpreterConfig IC;
    IC.Exec = Engine;
    Interpreter ILive(MLive, std::move(MemLive), TimingModel(), IC);
    ILive.attachProfiler(&Live);
    const RunStats LiveStats = ILive.run();
    ASSERT_TRUE(LiveStats.Completed);

    // Streamed: the same run wrapped as an AccessSource, consumed by a
    // fresh profiler.
    Module MSrc = test::makeChaseModule(D, N);
    instrumentModule(MSrc, ProfilingMethod::EdgeCheck);
    SimMemory MemSrc;
    test::fillChaseList(MemSrc, 4096, 64);
    Interpreter ISrc(MSrc, std::move(MemSrc), TimingModel(), IC);
    InterpreterSource Src(ISrc, MSrc.NumLoadSites);
    StrideProfiler Streamed(MSrc.NumLoadSites, PC);
    const uint64_t Cost = Streamed.consume(Src);

    ASSERT_TRUE(Src.ran());
    EXPECT_EQ(Src.stats().LoadRefs, LiveStats.LoadRefs);
    // The stream-driven profiler charges exactly what the live run booked
    // as runtime cycles, and harvests the identical profile.
    EXPECT_EQ(Cost, LiveStats.RuntimeCycles);
    EXPECT_EQ(Streamed.totalInvocations(), Live.totalInvocations());
    EXPECT_EQ(Streamed.totalProcessed(), Live.totalProcessed());
    EXPECT_EQ(Streamed.totalLfuCalls(), Live.totalLfuCalls());
    EXPECT_EQ(strideProfileToJson(StrideProfile::fromProfiler(Streamed)).str(),
              strideProfileToJson(StrideProfile::fromProfiler(Live)).str());
  }
}

//===----------------------------------------------------------------------===//
// Capture -> replay fidelity (the acceptance bar)
//===----------------------------------------------------------------------===//

// Every profiling method on both engines: a capture of the live profile
// run replays to a bit-identical stride profile, edge profile, and
// strideProf call accounting.
TEST(TraceReplay, ReplayedProfilesMatchLiveAcrossMethodsAndEngines) {
  std::unique_ptr<Workload> W = makeWorkloadByName("181.mcf");
  ASSERT_NE(W, nullptr);
  for (auto Engine : {InterpreterConfig::Engine::Reference,
                      InterpreterConfig::Engine::Decoded}) {
    for (ProfilingMethod Method : allProfilingMethods()) {
      const std::string Tag =
          std::string(Engine == InterpreterConfig::Engine::Reference
                          ? "reference"
                          : "decoded") +
          "/" + profilingMethodName(Method);
      SCOPED_TRACE(Tag);
      const std::string Path = tmpPath("diff_" +
                                       std::string(profilingMethodName(
                                           Method)) +
                                       (Engine ==
                                                InterpreterConfig::Engine::
                                                    Reference
                                            ? "_ref"
                                            : "_dec") +
                                       ".sprof.trace");

      PipelineConfig C = engineConfig(Engine);
      C.TraceCapturePath = Path;
      Pipeline P(*W, C);
      const ProfileRunResult Live =
          P.runProfile(Method, DataSet::Train, /*WithMemorySystem=*/false);
      ASSERT_TRUE(Live.Capture.Enabled);
      EXPECT_EQ(Live.Capture.Schema, TraceSchemaV2);
      // The capture records the complete pre-sampling invocation stream.
      EXPECT_EQ(Live.Capture.Events, Live.StrideInvocations);

      TraceReplayOptions Opts;
      Opts.Config = engineConfig(Engine);
      Opts.EvaluateWorkload = false;
      Opts.SimulateMemory = false;
      const TraceReplayResult Replay = replayTraceFile(Path, Opts);
      ASSERT_TRUE(Replay.Ok) << Replay.Error;
      EXPECT_EQ(Replay.Method, Method);
      EXPECT_EQ(Replay.Events, Live.StrideInvocations);

      EXPECT_EQ(strideProfileToJson(Replay.Profile.Strides).str(),
                strideProfileToJson(Live.Strides).str());
      EXPECT_EQ(edgeProfileToJson(Replay.Profile.Edges).str(),
                edgeProfileToJson(Live.Edges).str());
      EXPECT_EQ(Replay.Profile.StrideInvocations, Live.StrideInvocations);
      EXPECT_EQ(Replay.Profile.StrideProcessed, Live.StrideProcessed);
      EXPECT_EQ(Replay.Profile.LfuCalls, Live.LfuCalls);
      // The serialized store -- what experiments persist -- is identical.
      const ProfileStore LiveStore({W->info().Name,
                                    profilingMethodName(Method),
                                    dataSetName(DataSet::Train)},
                                   Live.Edges, Live.Strides);
      const ProfileStore ReplayStore({W->info().Name,
                                      profilingMethodName(Method),
                                      dataSetName(DataSet::Train)},
                                     Replay.Profile.Edges,
                                     Replay.Profile.Strides);
      EXPECT_EQ(LiveStore.toString(), ReplayStore.toString());
      std::remove(Path.c_str());
    }
  }
}

// The full-evaluation half: replaying a capture whose provenance names a
// rebuildable workload reproduces the baseline and prefetched timed runs
// -- cycle accounting, classifier verdicts, and prefetch-outcome
// attribution -- bit for bit, on both engines.
TEST(TraceReplay, FullEvaluationMatchesLivePipeline) {
  std::unique_ptr<Workload> W = makeWorkloadByName("181.mcf");
  ASSERT_NE(W, nullptr);
  for (auto Engine : {InterpreterConfig::Engine::Reference,
                      InterpreterConfig::Engine::Decoded}) {
    SCOPED_TRACE(Engine == InterpreterConfig::Engine::Reference
                     ? "reference"
                     : "decoded");
    const std::string Path =
        tmpPath(Engine == InterpreterConfig::Engine::Reference
                    ? "full_ref.sprof.trace"
                    : "full_dec.sprof.trace");
    PipelineConfig C = engineConfig(Engine);
    C.Memory.EnableAttribution = true;
    C.TraceCapturePath = Path;
    Pipeline P(*W, C);
    const ProfileRunResult Live =
        P.runProfile(ProfilingMethod::EdgeCheck, DataSet::Train,
                     /*WithMemorySystem=*/false);
    ASSERT_TRUE(Live.Capture.Enabled);
    const RunStats LiveBaseline = P.runBaseline(DataSet::Train);
    const TimedRunResult LiveTimed =
        P.runPrefetched(DataSet::Train, Live.Edges, Live.Strides);

    TraceReplayOptions Opts;
    Opts.Config = engineConfig(Engine);
    Opts.Config.Memory.EnableAttribution = true;
    Opts.SimulateMemory = false;
    const TraceReplayResult Replay = replayTraceFile(Path, Opts);
    ASSERT_TRUE(Replay.Ok) << Replay.Error;
    ASSERT_TRUE(Replay.HasWorkload);
    EXPECT_EQ(Replay.Prov.Workload, W->info().Name);

    expectSameStats(LiveBaseline, Replay.Baseline);
    expectSameStats(LiveTimed.Stats, Replay.Timed.Stats);
    EXPECT_EQ(feedbackToJson(Replay.Timed.Feedback, Replay.Profile.Strides,
                             Opts.Config.Classifier)
                  .str(),
              feedbackToJson(LiveTimed.Feedback, Live.Strides,
                             C.Classifier)
                  .str());
    ASSERT_TRUE(LiveTimed.Attribution.Enabled);
    ASSERT_TRUE(Replay.Timed.Attribution.Enabled);
    EXPECT_EQ(attributionToJson(Replay.Timed.Attribution).str(),
              attributionToJson(LiveTimed.Attribution).str());
    EXPECT_DOUBLE_EQ(Replay.Speedup,
                     static_cast<double>(LiveBaseline.Cycles) /
                         static_cast<double>(LiveTimed.Stats.Cycles));
    std::remove(Path.c_str());
  }
}

// Workload-less streams (the trace-backed family) get the stream-only
// path: stride profiling, per-site classification, and the two-pass cache
// simulation with synthesized prefetches.
TEST(TraceReplay, StreamOnlyReplaySimulatesPrefetching) {
  SyntheticTraceConfig Config;
  Config.Events = 20000;
  Config.Seed = 3;
  auto Src = makeSyntheticTrace("stream-seq", Config);
  ASSERT_NE(Src, nullptr);

  TraceReplayOptions Opts;
  const TraceReplayResult R = replayStream(*Src, Opts, "stream-seq");
  ASSERT_TRUE(R.Ok);
  EXPECT_FALSE(R.HasWorkload);
  ASSERT_TRUE(R.HasMemSim);
  EXPECT_GT(R.Profile.StrideInvocations, 0u);

  // stream-seq is one dominant stride per site: every site classifies,
  // and the synthesized prefetches must recover stall cycles.
  size_t Classified = 0;
  for (StrideClass SC : R.SiteClass)
    Classified += SC != StrideClass::None;
  EXPECT_GT(Classified, 0u);
  EXPECT_EQ(R.MemBaseline.Events, Config.Events);
  EXPECT_GT(R.MemBaseline.StallCycles, 0u);
  EXPECT_GT(R.MemPrefetched.Prefetches, 0u);
  EXPECT_LT(R.MemPrefetched.StallCycles, R.MemBaseline.StallCycles);
}

//===----------------------------------------------------------------------===//
// Parallel replay: bit-identical to serial (the tentpole's acceptance bar)
//===----------------------------------------------------------------------===//

namespace {

/// Every observable a replay produces, compared field by field so a
/// parallel divergence names exactly what broke.
void expectSameReplay(const TraceReplayResult &Serial,
                      const TraceReplayResult &Par) {
  ASSERT_TRUE(Serial.Ok) << Serial.Error;
  ASSERT_TRUE(Par.Ok) << Par.Error;
  EXPECT_EQ(Par.Events, Serial.Events);
  EXPECT_EQ(Par.Method, Serial.Method);
  EXPECT_EQ(strideProfileToJson(Par.Profile.Strides).str(),
            strideProfileToJson(Serial.Profile.Strides).str());
  EXPECT_EQ(edgeProfileToJson(Par.Profile.Edges).str(),
            edgeProfileToJson(Serial.Profile.Edges).str());
  EXPECT_EQ(Par.Profile.StrideInvocations, Serial.Profile.StrideInvocations);
  EXPECT_EQ(Par.Profile.StrideProcessed, Serial.Profile.StrideProcessed);
  EXPECT_EQ(Par.Profile.LfuCalls, Serial.Profile.LfuCalls);
  EXPECT_EQ(Par.Profile.Stats.RuntimeCycles,
            Serial.Profile.Stats.RuntimeCycles);
  ASSERT_EQ(Par.SiteClass.size(), Serial.SiteClass.size());
  for (size_t S = 0; S != Serial.SiteClass.size(); ++S)
    EXPECT_EQ(Par.SiteClass[S], Serial.SiteClass[S]) << "site " << S;
  EXPECT_EQ(Par.HasMemSim, Serial.HasMemSim);
  if (Serial.HasMemSim) {
    EXPECT_EQ(Par.MemBaseline.Cycles, Serial.MemBaseline.Cycles);
    EXPECT_EQ(Par.MemBaseline.StallCycles, Serial.MemBaseline.StallCycles);
    EXPECT_EQ(Par.MemBaseline.Loads, Serial.MemBaseline.Loads);
    EXPECT_EQ(Par.MemPrefetched.Cycles, Serial.MemPrefetched.Cycles);
    EXPECT_EQ(Par.MemPrefetched.StallCycles,
              Serial.MemPrefetched.StallCycles);
    EXPECT_EQ(Par.MemPrefetched.Prefetches, Serial.MemPrefetched.Prefetches);
    EXPECT_EQ(Par.MemBaselineStats.DemandAccesses,
              Serial.MemBaselineStats.DemandAccesses);
    EXPECT_EQ(Par.MemPrefetchedStats.PrefetchesIssued,
              Serial.MemPrefetchedStats.PrefetchesIssued);
  }
}

} // namespace

// The differential bar: for every profiling method, with and without the
// stream-driven memory simulation, a threaded replay of a real capture is
// bit-identical to the serial replay of the same file.
TEST(TraceReplay, ParallelReplayMatchesSerialAcrossMethods) {
  std::unique_ptr<Workload> W = makeWorkloadByName("181.mcf");
  ASSERT_NE(W, nullptr);
  for (ProfilingMethod Method : allProfilingMethods()) {
    SCOPED_TRACE(profilingMethodName(Method));
    const std::string Path =
        tmpPath("par_" + std::string(profilingMethodName(Method)) +
                ".sprof.trace");
    PipelineConfig C = engineConfig(InterpreterConfig::Engine::Decoded);
    C.TraceCapturePath = Path;
    Pipeline P(*W, C);
    const ProfileRunResult Live =
        P.runProfile(Method, DataSet::Train, /*WithMemorySystem=*/false);
    ASSERT_TRUE(Live.Capture.Enabled);

    for (bool MemSim : {false, true}) {
      SCOPED_TRACE(MemSim ? "memsim" : "profile-only");
      TraceReplayOptions Opts;
      Opts.Config = engineConfig(InterpreterConfig::Engine::Decoded);
      Opts.EvaluateWorkload = false;
      Opts.SimulateMemory = MemSim;
      const TraceReplayResult Serial = replayTraceFile(Path, Opts);
      Opts.Threads = 4;
      const TraceReplayResult Par = replayTraceFile(Path, Opts);
      expectSameReplay(Serial, Par);
    }
    std::remove(Path.c_str());
  }
}

// The workload-evaluation half under threads: baseline/timed accounting,
// feedback, attribution, and speedup all match the serial replay.
TEST(TraceReplay, ParallelWorkloadEvaluationMatchesSerial) {
  std::unique_ptr<Workload> W = makeWorkloadByName("181.mcf");
  ASSERT_NE(W, nullptr);
  const std::string Path = tmpPath("par_eval.sprof.trace");
  PipelineConfig C = engineConfig(InterpreterConfig::Engine::Decoded);
  C.TraceCapturePath = Path;
  Pipeline P(*W, C);
  const ProfileRunResult Live =
      P.runProfile(ProfilingMethod::EdgeCheck, DataSet::Train,
                   /*WithMemorySystem=*/false);
  ASSERT_TRUE(Live.Capture.Enabled);

  TraceReplayOptions Opts;
  Opts.Config = engineConfig(InterpreterConfig::Engine::Decoded);
  Opts.Config.Memory.EnableAttribution = true;
  Opts.SimulateMemory = false;
  const TraceReplayResult Serial = replayTraceFile(Path, Opts);
  Opts.Threads = 3;
  const TraceReplayResult Par = replayTraceFile(Path, Opts);
  ASSERT_TRUE(Serial.Ok) << Serial.Error;
  ASSERT_TRUE(Par.Ok) << Par.Error;
  ASSERT_TRUE(Serial.HasWorkload);
  ASSERT_TRUE(Par.HasWorkload);

  expectSameReplay(Serial, Par);
  expectSameStats(Serial.Baseline, Par.Baseline);
  expectSameStats(Serial.Timed.Stats, Par.Timed.Stats);
  EXPECT_EQ(feedbackToJson(Par.Timed.Feedback, Par.Profile.Strides,
                           Opts.Config.Classifier)
                .str(),
            feedbackToJson(Serial.Timed.Feedback, Serial.Profile.Strides,
                           Opts.Config.Classifier)
                .str());
  ASSERT_TRUE(Serial.Timed.Attribution.Enabled);
  ASSERT_TRUE(Par.Timed.Attribution.Enabled);
  EXPECT_EQ(attributionToJson(Par.Timed.Attribution).str(),
            attributionToJson(Serial.Timed.Attribution).str());
  EXPECT_DOUBLE_EQ(Par.Speedup, Serial.Speedup);
  std::remove(Path.c_str());
}

// The shard count is an implementation knob, not an observable: any value,
// on any method, produces the identical profile as the serial replay --
// the commutative-merge contract at the options level.
TEST(TraceReplay, ProfileShardCountIsObservationallyInvisible) {
  SyntheticTraceConfig Config;
  Config.Events = 30000;
  Config.Seed = 11;
  auto Src = makeSyntheticTrace("stream-mixed", Config);
  ASSERT_NE(Src, nullptr);

  for (ProfilingMethod Method : allProfilingMethods()) {
    SCOPED_TRACE(profilingMethodName(Method));
    TraceReplayOptions Base;
    Base.Method = Method;
    Base.EvaluateWorkload = false;
    Base.SimulateMemory = false;
    ASSERT_TRUE(Src->reset());
    const TraceReplayResult Serial = replayStream(*Src, Base, "mixed");
    ASSERT_TRUE(Serial.Ok) << Serial.Error;
    for (unsigned Shards : {1u, 2u, 5u, 16u}) {
      SCOPED_TRACE("shards " + std::to_string(Shards));
      TraceReplayOptions O = Base;
      O.Threads = 3;
      O.ProfileShards = Shards;
      ASSERT_TRUE(Src->reset());
      const TraceReplayResult R = replayStream(*Src, O, "mixed");
      expectSameReplay(Serial, R);
    }
  }
}
