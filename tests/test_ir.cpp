//===- tests/test_ir.cpp - IR core unit tests -------------------------------===//
//
// Part of the StrideProf project test suite.
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "ir/Module.h"
#include "ir/Verifier.h"

#include "TestHelpers.h"
#include <gtest/gtest.h>

#include <sstream>

using namespace sprof;

TEST(Operand, Constructors) {
  Operand R = Operand::reg(3);
  EXPECT_TRUE(R.isReg());
  EXPECT_FALSE(R.isImm());
  EXPECT_EQ(R.getReg(), 3u);

  Operand I = Operand::imm(-42);
  EXPECT_TRUE(I.isImm());
  EXPECT_EQ(I.getImm(), -42);

  Operand N = Operand::none();
  EXPECT_TRUE(N.isNone());
}

TEST(Opcode, TerminatorClassification) {
  EXPECT_TRUE(isTerminator(Opcode::Jmp));
  EXPECT_TRUE(isTerminator(Opcode::Br));
  EXPECT_TRUE(isTerminator(Opcode::Ret));
  EXPECT_TRUE(isTerminator(Opcode::Halt));
  EXPECT_FALSE(isTerminator(Opcode::Call));
  EXPECT_FALSE(isTerminator(Opcode::Load));
  EXPECT_FALSE(isTerminator(Opcode::ProfStride));
}

TEST(Opcode, DestClassification) {
  EXPECT_TRUE(hasDest(Opcode::Load));
  EXPECT_TRUE(hasDest(Opcode::Add));
  EXPECT_TRUE(hasDest(Opcode::ProfCounterRead));
  EXPECT_FALSE(hasDest(Opcode::Store));
  EXPECT_FALSE(hasDest(Opcode::Prefetch));
  EXPECT_FALSE(hasDest(Opcode::ProfCounterInc));
}

TEST(IRBuilder, AssignsUniqueLoadSites) {
  Module M;
  IRBuilder B(M);
  B.startFunction("main", 0);
  Reg P = B.movImm(0x1000);
  B.load(P, 0);
  uint32_t S0 = B.lastSiteId();
  B.load(P, 8);
  uint32_t S1 = B.lastSiteId();
  B.halt();

  EXPECT_NE(S0, S1);
  EXPECT_EQ(M.NumLoadSites, 2u);
}

TEST(Module, LocateLoadSites) {
  uint32_t DataSite = 0, NextSite = 0;
  Module M = test::makeChaseModule(DataSite, NextSite);
  std::vector<SiteLocation> Locs = M.locateLoadSites();
  ASSERT_EQ(Locs.size(), 2u);
  EXPECT_TRUE(Locs[DataSite].isValid());
  EXPECT_TRUE(Locs[NextSite].isValid());
  EXPECT_EQ(Locs[DataSite].Block, Locs[NextSite].Block);
  EXPECT_LT(Locs[DataSite].Inst, Locs[NextSite].Inst);
}

TEST(Function, EdgesAndPredecessors) {
  uint32_t D, N;
  Module M = test::makeChaseModule(D, N);
  const Function &F = M.Functions[0];
  // entry->head, head->body, head->exit, body->head.
  std::vector<Edge> Edges = F.edges();
  EXPECT_EQ(Edges.size(), 4u);

  std::vector<uint32_t> HeadPreds = F.predecessors(1);
  ASSERT_EQ(HeadPreds.size(), 2u); // entry and body
}

TEST(Verifier, AcceptsWellFormedModule) {
  uint32_t D, N;
  Module M = test::makeChaseModule(D, N);
  std::vector<std::string> Errors = verifyModule(M);
  EXPECT_TRUE(Errors.empty()) << (Errors.empty() ? "" : Errors.front());
}

TEST(Verifier, RejectsMissingTerminator) {
  Module M;
  IRBuilder B(M);
  B.startFunction("main", 0);
  B.movImm(1);
  // No terminator.
  EXPECT_FALSE(isWellFormed(M));
}

TEST(Verifier, RejectsOutOfRangeRegister) {
  Module M;
  IRBuilder B(M);
  B.startFunction("main", 0);
  Reg P = B.movImm(0x1000);
  B.load(P, 0);
  B.halt();
  // Corrupt a register index.
  M.Functions[0].Blocks[0].Insts[1].A = Operand::reg(999);
  EXPECT_FALSE(isWellFormed(M));
}

TEST(Verifier, RejectsBadBranchTarget) {
  Module M;
  IRBuilder B(M);
  B.startFunction("main", 0);
  B.halt();
  M.Functions[0].Blocks[0].Insts[0].Op = Opcode::Jmp;
  M.Functions[0].Blocks[0].Insts[0].Target0 = 7;
  EXPECT_FALSE(isWellFormed(M));
}

TEST(Verifier, RejectsDuplicateSiteIds) {
  Module M;
  IRBuilder B(M);
  B.startFunction("main", 0);
  Reg P = B.movImm(0x1000);
  B.load(P, 0);
  B.load(P, 8);
  B.halt();
  M.Functions[0].Blocks[0].Insts[2].SiteId =
      M.Functions[0].Blocks[0].Insts[1].SiteId;
  EXPECT_FALSE(isWellFormed(M));
}

TEST(Verifier, RejectsCallArityMismatch) {
  Module M;
  IRBuilder B(M);
  uint32_t Callee = B.startFunction("f", 2);
  B.ret(Operand::imm(0));
  B.startFunction("main", 0);
  B.call(Callee, {Operand::imm(1)}); // one arg, needs two
  B.halt();
  M.EntryFunction = 1;
  EXPECT_FALSE(isWellFormed(M));
}

TEST(Printer, ProducesReadableText) {
  uint32_t D, N;
  Module M = test::makeChaseModule(D, N);
  std::ostringstream OS;
  M.print(OS);
  std::string Text = OS.str();
  EXPECT_NE(Text.find("module chase"), std::string::npos);
  EXPECT_NE(Text.find("load"), std::string::npos);
  EXPECT_NE(Text.find("halt"), std::string::npos);
  EXPECT_NE(Text.find("site:"), std::string::npos);
}
