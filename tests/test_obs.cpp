//===- tests/test_obs.cpp - Observability layer unit tests ------------------===//
//
// Part of the StrideProf project test suite.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Covers the telemetry subsystem: metric semantics, sharded registry
/// folding, trace span nesting and Chrome trace emission, the background
/// time-series sampler, the engine self-profiler, JSON round-trips, the
/// versioned run report, and the guarantee that enabling telemetry does
/// not perturb profiles.
///
//===----------------------------------------------------------------------===//

#include "obs/Json.h"
#include "obs/Metrics.h"
#include "obs/Obs.h"
#include "obs/Report.h"
#include "obs/Sampler.h"
#include "obs/SelfProfiler.h"
#include "obs/Sharded.h"
#include "obs/Trace.h"
#include "profile/ProfileData.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <sstream>
#include <thread>

using namespace sprof;

namespace {

/// The shared chase fixture as a Workload, so Pipeline can drive it: three
/// passes over a 64-byte-stride linked list.
class ChaseWorkload final : public Workload {
public:
  WorkloadInfo info() const override {
    return {"test.chase", "IR", "three-pass pointer chase"};
  }

  Program build(const BuildRequest &Req) const override {
    const DataSet DS = Req.DS;
    Program Prog;
    uint32_t DataSite = 0, NextSite = 0;
    Prog.M = test::makePassesChaseModule(3, DataSite, NextSite);
    test::fillChaseList(Prog.Memory, DS == DataSet::Ref ? 6000 : 2000, 64);
    return Prog;
  }
};

} // namespace

// -- Metrics ---------------------------------------------------------------

TEST(ObsMetrics, CounterAndGaugeSemantics) {
  Counter C;
  EXPECT_EQ(C.value(), 0u);
  C.inc();
  C.inc(41);
  EXPECT_EQ(C.value(), 42u);

  Gauge G;
  EXPECT_DOUBLE_EQ(G.value(), 0.0);
  G.set(1.5);
  G.set(2.5); // last write wins
  EXPECT_DOUBLE_EQ(G.value(), 2.5);
}

TEST(ObsMetrics, HistogramBucketsAndAggregates) {
  Histogram H({4, 16, 64});
  for (uint64_t Sample : {1, 4, 5, 100})
    H.record(Sample);

  EXPECT_EQ(H.count(), 4u);
  EXPECT_EQ(H.sum(), 110u);
  EXPECT_EQ(H.min(), 1u);
  EXPECT_EQ(H.max(), 100u);
  EXPECT_DOUBLE_EQ(H.average(), 27.5);

  // Bucket I counts samples <= bound I; the last bucket is overflow.
  ASSERT_EQ(H.bucketCounts().size(), 4u);
  EXPECT_EQ(H.bucketCounts()[0], 2u); // 1, 4
  EXPECT_EQ(H.bucketCounts()[1], 1u); // 5
  EXPECT_EQ(H.bucketCounts()[2], 0u);
  EXPECT_EQ(H.bucketCounts()[3], 1u); // 100
}

TEST(ObsMetrics, EmptyHistogramIsWellDefined) {
  Histogram H;
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), 0u);
  EXPECT_DOUBLE_EQ(H.average(), 0.0);
}

TEST(ObsMetrics, RegistryReturnsStableObjects) {
  MetricsRegistry R;
  Counter *A = &R.counter("a");
  A->inc(7);
  // Same name resolves to the same object; the address is stable even
  // after other insertions (node-based storage).
  for (int I = 0; I != 100; ++I)
    R.counter("filler." + std::to_string(I));
  EXPECT_EQ(&R.counter("a"), A);
  EXPECT_EQ(R.counter("a").value(), 7u);
  EXPECT_NE(&R.counter("b"), A);

  // Custom bounds apply only on creation.
  Histogram &H = R.histogram("h", {10, 20});
  EXPECT_EQ(R.histogram("h", {999}).bounds(), H.bounds());
}

TEST(ObsMetrics, SessionHandlesAreNullWhenMetricsOff) {
  ObsConfig Config;
  Config.Enabled = true;
  Config.CollectMetrics = false;
  ObsSession Session(Config);
  EXPECT_EQ(Session.counter("x"), nullptr);
  EXPECT_EQ(Session.gauge("x"), nullptr);
  EXPECT_EQ(Session.histogram("x"), nullptr);

  Config.CollectMetrics = true;
  ObsSession On(Config);
  EXPECT_NE(On.counter("x"), nullptr);
}

// -- Sharded registry ------------------------------------------------------

// The concurrency contract (and the TSan target): N workers hammer their
// own shards in parallel, and the fold still produces exact totals.
TEST(ShardedMetrics, ConcurrentShardWritesFoldExactly) {
  constexpr unsigned NumWorkers = 8;
  constexpr unsigned IncsPerWorker = 20000;
  ShardedMetricsRegistry Shards(NumWorkers);
  ASSERT_EQ(Shards.numShards(), NumWorkers);

  std::vector<std::thread> Workers;
  for (unsigned W = 0; W != NumWorkers; ++W)
    Workers.emplace_back([&Shards, W] {
      MetricsRegistry &Shard = Shards.shard(W);
      Counter &C = Shard.counter("shared.events");
      Histogram &H = Shard.histogram("shared.sizes", {16, 64});
      for (unsigned I = 0; I != IncsPerWorker; ++I) {
        C.inc();
        H.record(I % 128);
      }
      Shard.counter("worker." + std::to_string(W)).inc(W + 1);
    });
  for (std::thread &T : Workers)
    T.join();

  MetricsRegistry Total;
  Shards.mergeInto(Total);
  EXPECT_EQ(Total.counter("shared.events").value(),
            uint64_t{NumWorkers} * IncsPerWorker);
  EXPECT_EQ(Total.histogram("shared.sizes").count(),
            uint64_t{NumWorkers} * IncsPerWorker);
  for (unsigned W = 0; W != NumWorkers; ++W)
    EXPECT_EQ(Total.counter("worker." + std::to_string(W)).value(), W + 1u);

  // clear() resets the shards for the next engine drain.
  Shards.clear();
  MetricsRegistry Empty;
  Shards.mergeInto(Empty);
  EXPECT_TRUE(Empty.counters().empty());
}

// The determinism contract: folding job scopes through shards -- whatever
// worker got whatever scope -- is bit-identical to a direct serial merge,
// with gauges replayed in a fixed order afterwards (as the engine does).
TEST(ShardedMetrics, FoldIsBitIdenticalToSerialMerge) {
  std::vector<MetricsRegistry> Scopes(12);
  for (size_t J = 0; J != Scopes.size(); ++J) {
    Scopes[J].counter("jobs.done").inc(J + 1);
    Scopes[J].histogram("jobs.cost").record(J * 7 % 50, J + 1);
    Scopes[J].gauge("jobs.last").set(static_cast<double>(J));
  }

  MetricsRegistry Serial;
  for (const MetricsRegistry &S : Scopes)
    Serial.merge(S);

  constexpr unsigned NumWorkers = 4;
  ShardedMetricsRegistry Shards(NumWorkers);
  std::vector<std::thread> Workers;
  for (unsigned W = 0; W != NumWorkers; ++W)
    Workers.emplace_back([&, W] {
      for (size_t J = W; J < Scopes.size(); J += NumWorkers)
        Shards.shard(W).merge(Scopes[J]);
    });
  for (std::thread &T : Workers)
    T.join();

  MetricsRegistry Folded;
  Shards.mergeInto(Folded);
  // Gauges are last-write-wins and therefore shard-order dependent; the
  // engine replays them per job id after the fold.
  Folded.setGaugesFrom(Serial);

  std::vector<std::pair<std::string, uint64_t>> SC, FC;
  std::vector<std::pair<std::string, double>> SG, FG;
  Serial.snapshotScalars(SC, SG);
  Folded.snapshotScalars(FC, FG);
  EXPECT_EQ(FC, SC);
  EXPECT_EQ(FG, SG);
  const Histogram &HS = Serial.histograms().at("jobs.cost");
  const Histogram &HF = Folded.histograms().at("jobs.cost");
  EXPECT_EQ(HF.count(), HS.count());
  EXPECT_EQ(HF.sum(), HS.sum());
  EXPECT_EQ(HF.min(), HS.min());
  EXPECT_EQ(HF.max(), HS.max());
  EXPECT_EQ(HF.bucketCounts(), HS.bucketCounts());
}

// -- Time-series sampler ---------------------------------------------------

TEST(TelemetrySampler, FinalSnapshotMatchesRegistryTotals) {
  MetricsRegistry R;
  TraceCollector Clock;
  Counter &C = R.counter("work.items");
  Gauge &G = R.gauge("work.ratio");

  TelemetrySampler S(R, Clock, /*IntervalUs=*/100, /*RingCapacity=*/512);
  S.start();
  EXPECT_TRUE(S.running());
  for (int I = 0; I != 1000; ++I)
    C.inc(3);
  G.set(0.75);
  S.stop();
  EXPECT_FALSE(S.running());

  // stop() joins the thread and then snapshots, so the last ring entry
  // equals the end-of-run totals exactly -- however the sampling interval
  // interleaved with the producer.
  ASSERT_GE(S.samplesTaken(), 1u);
  ASSERT_FALSE(S.samples().empty());
  const TimeSeriesSample &Last = S.samples().back();
  bool SawCounter = false, SawGauge = false;
  for (const auto &[Name, V] : Last.Counters)
    if (Name == "work.items") {
      SawCounter = true;
      EXPECT_EQ(V, 3000u);
    }
  for (const auto &[Name, V] : Last.Gauges)
    if (Name == "work.ratio") {
      SawGauge = true;
      EXPECT_DOUBLE_EQ(V, 0.75);
    }
  EXPECT_TRUE(SawCounter);
  EXPECT_TRUE(SawGauge);

  // Timestamps are monotone on the shared trace clock.
  for (size_t I = 1; I < S.samples().size(); ++I)
    EXPECT_GE(S.samples()[I].TsUs, S.samples()[I - 1].TsUs);

  // stop() is idempotent: calling it again takes no extra snapshot.
  uint64_t Taken = S.samplesTaken();
  S.stop();
  EXPECT_EQ(S.samplesTaken(), Taken);

  // The serialized artifact mirrors the ring columnarly.
  JsonValue Doc = timeSeriesToJson(S);
  EXPECT_EQ(Doc.get("schema")->asString(), TimeSeriesSchemaV1);
  ASSERT_NE(Doc.get("timestamps_us"), nullptr);
  EXPECT_EQ(Doc.get("timestamps_us")->size(), S.samples().size());
  const JsonValue *Series = Doc.get("counters")->get("work.items");
  ASSERT_NE(Series, nullptr);
  ASSERT_EQ(Series->size(), S.samples().size());
  EXPECT_EQ(Series->at(Series->size() - 1).asUInt(), 3000u);
}

TEST(TelemetrySampler, RingIsBoundedAndCountsDrops) {
  MetricsRegistry R;
  TraceCollector Clock;
  R.counter("x").inc();

  TelemetrySampler S(R, Clock, /*IntervalUs=*/50, /*RingCapacity=*/2);
  S.start();
  // Oversample the two-slot ring for a while.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  S.stop();

  EXPECT_LE(S.samples().size(), 2u);
  EXPECT_GT(S.samplesTaken(), 2u);
  EXPECT_EQ(S.dropped(), S.samplesTaken() - S.samples().size());
  EXPECT_GT(S.dropped(), 0u);
  // Drop-oldest: the final (stop) snapshot always survives.
  ASSERT_FALSE(S.samples().empty());
  EXPECT_EQ(S.samples().back().Counters.front().second, 1u);
}

TEST(ObsTrace, SamplerRingFoldsIntoTraceAsCounterEvents) {
  ObsConfig OC;
  OC.Enabled = true;
  OC.SampleIntervalUs = 100;
  ObsSession Session(OC);
  ASSERT_NE(Session.sampler(), nullptr);
  Session.counter("fold.me")->inc(5);

  // No output paths configured: writeArtifacts only stops the sampler and
  // folds its ring into the trace.
  ASSERT_TRUE(Session.writeArtifacts());
  const std::vector<CounterSample> &Samples =
      Session.trace().counterSamples();
  ASSERT_FALSE(Samples.empty());
  bool Saw = false;
  for (const CounterSample &CS : Samples)
    if (CS.Name == "fold.me" && CS.Value == 5.0)
      Saw = true;
  EXPECT_TRUE(Saw);

  std::ostringstream OS;
  Session.trace().writeChromeTrace(OS);
  JsonValue Doc;
  ASSERT_TRUE(JsonValue::parse(OS.str(), Doc));
  bool SawCounterEvent = false;
  for (const JsonValue &E : Doc.get("traceEvents")->items())
    if (E.get("ph")->asString() == "C")
      SawCounterEvent = true;
  EXPECT_TRUE(SawCounterEvent);
}

// -- Engine self-profiler --------------------------------------------------

TEST(ObsSelfProfiler, DeterministicAttributionAndFoldedExport) {
  static const char *const Names[] = {"alpha", "beta"};
  EngineSelfProfiler P(/*Window=*/4);
  EXPECT_EQ(P.window(), 4u);
  P.configureSlots(2, Names);
  P.setContext("wl", "phase1");
  P.sample(0);
  P.sample(0);
  P.sample(1);
  P.setContext("wl", "phase2");
  P.sample(1);

  EXPECT_EQ(P.totalSamples(), 4u);
  std::vector<EngineSelfProfiler::Entry> E = P.entries();
  ASSERT_EQ(E.size(), 3u);
  // Sorted by samples descending, ties by (workload, phase, slot).
  EXPECT_EQ(E[0].Samples, 2u);
  EXPECT_EQ(E[0].Phase, "phase1");
  EXPECT_EQ(E[0].Slot, 0u);
  EXPECT_EQ(E[1].Samples, 1u);
  EXPECT_EQ(E[1].Phase, "phase1");
  EXPECT_EQ(E[1].Slot, 1u);
  EXPECT_EQ(E[2].Phase, "phase2");
  EXPECT_EQ(P.slotName(0), "alpha");
  EXPECT_EQ(P.slotName(7), "op7"); // outside the installed table

  // merge() accumulates sample counts commutatively.
  EngineSelfProfiler Q(/*Window=*/4);
  Q.configureSlots(2, Names);
  Q.setContext("wl", "phase1");
  Q.sample(0);
  P.merge(Q);
  EXPECT_EQ(P.totalSamples(), 5u);

  std::ostringstream OS;
  P.writeFolded(OS);
  const std::string Folded = OS.str();
  EXPECT_NE(Folded.find("wl;phase1;alpha 3"), std::string::npos);
  EXPECT_NE(Folded.find("wl;phase1;beta 1"), std::string::npos);
  EXPECT_NE(Folded.find("wl;phase2;beta 1"), std::string::npos);
}

// -- Tracing ---------------------------------------------------------------

TEST(ObsTrace, NestedSpansRecordDepthAndDuration) {
  TraceCollector C;
  EXPECT_EQ(C.currentDepth(), 0u);
  {
    TraceSpan Outer(&C, "outer", "test");
    EXPECT_EQ(C.currentDepth(), 1u);
    {
      TraceSpan Inner(&C, "inner", "test");
      EXPECT_EQ(C.currentDepth(), 2u);
    }
    EXPECT_EQ(C.currentDepth(), 1u);
  }
  EXPECT_EQ(C.currentDepth(), 0u);

  ASSERT_EQ(C.events().size(), 2u);
  const TraceEvent &Outer = C.events()[0];
  const TraceEvent &Inner = C.events()[1];
  EXPECT_EQ(Outer.Name, "outer");
  EXPECT_EQ(Outer.Depth, 0u);
  EXPECT_EQ(Inner.Name, "inner");
  EXPECT_EQ(Inner.Depth, 1u);
  // Both spans completed, and the inner one nests inside the outer.
  ASSERT_NE(Outer.DurationUs, UINT64_MAX);
  ASSERT_NE(Inner.DurationUs, UINT64_MAX);
  EXPECT_GE(Inner.StartUs, Outer.StartUs);
  EXPECT_LE(Inner.StartUs + Inner.DurationUs,
            Outer.StartUs + Outer.DurationUs);
  EXPECT_TRUE(C.hasSpan("outer"));
  EXPECT_FALSE(C.hasSpan("missing"));
}

TEST(ObsTrace, ChromeTraceIsValidJson) {
  TraceCollector C;
  {
    TraceSpan A(&C, "phase-a", "pipeline");
    TraceSpan B(&C, "phase-b", "interp");
  }
  C.appendCounterSample("metric.x", 10, 42.0);
  std::ostringstream OS;
  C.writeChromeTrace(OS);

  JsonValue Doc;
  std::string Error;
  ASSERT_TRUE(JsonValue::parse(OS.str(), Doc, &Error)) << Error;
  const JsonValue *Events = Doc.get("traceEvents");
  ASSERT_NE(Events, nullptr);
  ASSERT_EQ(Events->size(), 3u);
  unsigned Spans = 0, Counters = 0;
  for (const JsonValue &E : Events->items()) {
    EXPECT_NE(E.get("name"), nullptr);
    EXPECT_NE(E.get("ts"), nullptr);
    EXPECT_NE(E.get("pid"), nullptr);
    EXPECT_NE(E.get("tid"), nullptr);
    if (E.get("ph")->asString() == "X") {
      ++Spans;
      EXPECT_NE(E.get("dur"), nullptr);
    } else {
      // The only other event kind is a counter-track ("C") sample, which
      // carries its value in args.value instead of a duration.
      ++Counters;
      EXPECT_EQ(E.get("ph")->asString(), "C");
      EXPECT_EQ(E.get("name")->asString(), "metric.x");
      ASSERT_NE(E.get("args"), nullptr);
      EXPECT_DOUBLE_EQ(E.get("args")->get("value")->asDouble(), 42.0);
    }
  }
  EXPECT_EQ(Spans, 2u);
  EXPECT_EQ(Counters, 1u);
}

TEST(ObsTrace, TraceDetailGatesSessionSpans) {
  ObsConfig Config;
  Config.Enabled = true;
  Config.TraceDetail = 1;
  ObsSession Session(Config);
  {
    TraceSpan Coarse(&Session, "coarse", "test", /*Level=*/1);
    TraceSpan Fine(&Session, "fine", "test", /*Level=*/2);
    EXPECT_TRUE(Coarse.active());
    EXPECT_FALSE(Fine.active());
  }
  EXPECT_TRUE(Session.trace().hasSpan("coarse"));
  EXPECT_FALSE(Session.trace().hasSpan("fine"));

  Config.CollectTrace = false;
  ObsSession NoTrace(Config);
  TraceSpan S(&NoTrace, "coarse", "test", /*Level=*/1);
  EXPECT_FALSE(S.active());

  // A null session is always inert.
  TraceSpan Null(static_cast<ObsSession *>(nullptr), "x");
  EXPECT_FALSE(Null.active());
}

// -- JSON ------------------------------------------------------------------

TEST(ObsJson, RoundTripPreservesValuesAndEscapes) {
  JsonValue Root = JsonValue::object();
  Root.set("int", int64_t{-42});
  Root.set("big", uint64_t{1} << 53);
  Root.set("double", 2.5);
  Root.set("bool", true);
  Root.set("null", JsonValue());
  Root.set("tricky", "quote \" backslash \\ newline \n tab \t");
  JsonValue Arr = JsonValue::array();
  Arr.push(1);
  Arr.push("two");
  Arr.push(JsonValue::object().set("nested", 3));
  Root.set("arr", std::move(Arr));

  JsonValue Back;
  std::string Error;
  ASSERT_TRUE(JsonValue::parse(Root.str(), Back, &Error)) << Error;
  EXPECT_EQ(Back.get("int")->asInt(), -42);
  EXPECT_EQ(Back.get("big")->asUInt(), uint64_t{1} << 53);
  EXPECT_DOUBLE_EQ(Back.get("double")->asDouble(), 2.5);
  EXPECT_TRUE(Back.get("bool")->asBool());
  EXPECT_TRUE(Back.get("null")->isNull());
  EXPECT_EQ(Back.get("tricky")->asString(),
            "quote \" backslash \\ newline \n tab \t");
  ASSERT_EQ(Back.get("arr")->size(), 3u);
  EXPECT_EQ(Back.get("arr")->at(2).get("nested")->asInt(), 3);
  // Serialization is deterministic: a second round-trip is a fixpoint.
  EXPECT_EQ(Back.str(), Root.str());
}

TEST(ObsJson, ParserRejectsMalformedInput) {
  JsonValue Out;
  std::string Error;
  EXPECT_FALSE(JsonValue::parse("{\"a\": }", Out, &Error));
  EXPECT_FALSE(Error.empty());
  EXPECT_FALSE(JsonValue::parse("[1, 2", Out));
  EXPECT_FALSE(JsonValue::parse("{\"a\": 1} trailing", Out));
  EXPECT_TRUE(JsonValue::parse("  [1, 2, 3]  ", Out));
}

// -- Run reports -----------------------------------------------------------

TEST(ObsReport, RunReportRoundTripsWithStableSchema) {
  ChaseWorkload W;
  PipelineConfig Config;
  Config.Obs.Enabled = true;
  Config.Obs.TraceDetail = 2;
  Config.Memory.EnableAttribution = true;
  Pipeline P(W, Config);

  ProfileRunResult Prof =
      P.runProfile(ProfilingMethod::EdgeCheck, DataSet::Train);
  RunStats Baseline = P.runBaseline(DataSet::Ref);
  TimedRunResult Timed =
      P.runPrefetched(DataSet::Ref, Prof.Edges, Prof.Strides);

  JsonValue Report = buildRunReport(W.info().Name, P.config(), &Prof,
                                    &Timed, &Baseline, P.obs());
  JsonValue Back;
  std::string Error;
  ASSERT_TRUE(JsonValue::parse(Report.str(), Back, &Error)) << Error;

  EXPECT_EQ(Back.get("schema")->asString(), RunReportSchemaV5);
  EXPECT_EQ(Back.get("workload")->asString(), "test.chase");
  EXPECT_EQ(Back.get("profile_run")->get("method")->asString(),
            "edge-check");

  // Per-site stride sections carry at most the configured top-N strides
  // and the raw zero / zero-diff counts.
  const JsonValue *Sites =
      Back.get("profile_run")->get("stride_profile")->get("sites");
  ASSERT_NE(Sites, nullptr);
  ASSERT_GT(Sites->size(), 0u);
  for (const JsonValue &S : Sites->items()) {
    EXPECT_LE(S.get("top_strides")->size(), 4u);
    EXPECT_NE(S.get("zero_strides"), nullptr);
    EXPECT_NE(S.get("zero_diffs"), nullptr);
  }

  // Classification verdicts reference the thresholds block.
  const JsonValue *Classification =
      Back.get("timed_run")->get("classification");
  ASSERT_NE(Classification, nullptr);
  EXPECT_EQ(Classification->get("thresholds")->get("trip_count")->asUInt(),
            Config.Classifier.TripCountThreshold);
  ASSERT_GT(Classification->get("decisions")->size(), 0u);

  // Registry counters land in the report and agree with the pipeline's
  // own accounting.
  const JsonValue *Counters = Back.get("metrics")->get("counters");
  ASSERT_NE(Counters, nullptr);
  EXPECT_EQ(Counters->get("strideprof.invocations")->asUInt(),
            Prof.StrideInvocations);
  EXPECT_EQ(Counters->get("pipeline.profile_runs")->asUInt(), 1u);
  EXPECT_EQ(Counters->get("pipeline.baseline_runs")->asUInt(), 1u);
  EXPECT_EQ(Counters->get("pipeline.timed_runs")->asUInt(), 1u);

  EXPECT_GT(Back.get("speedup")->asDouble(), 0.0);

  // The /2 attribution section: outcome classes partition the issued
  // prefetches exactly, and the report agrees with the in-memory stats.
  const JsonValue *Attribution = Back.get("attribution");
  ASSERT_NE(Attribution, nullptr);
  const JsonValue *Outcomes = Attribution->get("outcomes");
  ASSERT_NE(Outcomes, nullptr);
  EXPECT_EQ(Outcomes->get("useful")->asUInt() +
                Outcomes->get("late")->asUInt() +
                Outcomes->get("early")->asUInt() +
                Outcomes->get("redundant")->asUInt(),
            Timed.Stats.Mem.PrefetchesIssued);
  EXPECT_EQ(Outcomes->get("issued")->asUInt(),
            Timed.Stats.Mem.PrefetchesIssued);
  EXPECT_TRUE(Attribution->get("finalized")->asBool());
  ASSERT_GT(Attribution->get("per_site")->size(), 0u);
  for (const JsonValue &S : Attribution->get("per_site")->items()) {
    EXPECT_NE(S.get("class"), nullptr);
    EXPECT_NE(S.get("l1_misses"), nullptr);
    EXPECT_NE(S.get("l1_mpki"), nullptr);
  }

  // The prefetch.outcome.* counters the pipeline flushed match the
  // attribution totals.
  EXPECT_EQ(Counters->get("prefetch.outcome.useful")->asUInt(),
            Timed.Attribution.Total.Useful);
  EXPECT_EQ(Counters->get("memsys.site_miss.accesses")->asUInt(),
            Timed.Stats.Mem.DemandAccesses);

  // Every pipeline phase left a trace span.
  for (const char *Phase : {"run-profile", "instrument", "execute",
                            "strideprof-harvest", "run-baseline",
                            "timed-run", "classify", "prefetch-insert"})
    EXPECT_TRUE(P.obs()->trace().hasSpan(Phase)) << Phase;
}

// The /5 trace-tier section: present exactly when the run executed under
// the Trace engine, with the counters agreeing with the pipeline's
// in-memory TraceTierStats and the derived side-exit rate in range.
TEST(ObsReport, TraceTierSectionRoundTrips) {
  ChaseWorkload W;
  PipelineConfig Config;
  Config.Interp.Exec = InterpreterConfig::Engine::Trace;
  Config.Interp.Trace.HotThreshold = 4;
  Config.Interp.Trace.PathThreshold = 3;
  Pipeline P(W, Config);

  ProfileRunResult Prof =
      P.runProfile(ProfilingMethod::EdgeCheck, DataSet::Train);
  ASSERT_TRUE(Prof.TraceTier.Enabled);

  JsonValue Report = buildRunReport(W.info().Name, P.config(), &Prof,
                                    nullptr, nullptr, nullptr);
  JsonValue Back;
  std::string Error;
  ASSERT_TRUE(JsonValue::parse(Report.str(), Back, &Error)) << Error;

  const JsonValue *TT = Back.get("profile_run")->get("trace_tier");
  ASSERT_NE(TT, nullptr);
  EXPECT_EQ(TT->get("traces_compiled")->asUInt() +
                TT->get("traces_adopted")->asUInt(),
            Prof.TraceTier.TracesCompiled + Prof.TraceTier.TracesAdopted);
  EXPECT_EQ(TT->get("iterations")->asUInt(), Prof.TraceTier.Iterations);
  EXPECT_GT(TT->get("iterations")->asUInt(), 0u);
  EXPECT_EQ(TT->get("entries")->asUInt(), Prof.TraceTier.Entries);
  if (Prof.TraceTier.Entries != 0) {
    double Rate = TT->get("side_exit_rate")->asDouble();
    EXPECT_GE(Rate, 0.0);
  }
  ASSERT_EQ(TT->get("traces")->size(), Prof.TraceTier.Traces.size());
  for (const JsonValue &T : TT->get("traces")->items()) {
    EXPECT_NE(T.get("head_pc"), nullptr);
    EXPECT_NE(T.get("num_guards"), nullptr);
    EXPECT_EQ(T.get("guard_exits")->size(),
              T.get("num_guards")->asUInt());
  }

  // And absent for the default (Decoded) engine.
  PipelineConfig DecConfig;
  Pipeline DP(W, DecConfig);
  ProfileRunResult DecProf =
      DP.runProfile(ProfilingMethod::EdgeCheck, DataSet::Train);
  JsonValue DecReport = buildRunReport(W.info().Name, DP.config(), &DecProf,
                                       nullptr, nullptr, nullptr);
  EXPECT_EQ(DecReport.get("profile_run")->get("trace_tier"), nullptr);
}

// A reader written against sprof.run_report/1 must keep working on /2
// documents: every /1 section is still present with its /1 shape, and the
// only additions are new optional top-level sections such a reader ignores.
TEST(ObsReport, ReportV2ParsesUnderV1Reader) {
  ChaseWorkload W;
  PipelineConfig Config;
  Config.Obs.Enabled = true;
  Config.Memory.EnableAttribution = true;
  Pipeline P(W, Config);

  ProfileRunResult Prof =
      P.runProfile(ProfilingMethod::EdgeCheck, DataSet::Train);
  RunStats Baseline = P.runBaseline(DataSet::Ref);
  TimedRunResult Timed =
      P.runPrefetched(DataSet::Ref, Prof.Edges, Prof.Strides);
  ProfileDiffResult Diff =
      diffStrideProfiles(Prof.Strides, Prof.Strides, Config.Classifier);

  JsonValue Report =
      buildRunReport(W.info().Name, P.config(), &Prof, &Timed, &Baseline,
                     P.obs(), ReportOptions{}, &Diff);
  JsonValue Back;
  ASSERT_TRUE(JsonValue::parse(Report.str(), Back));

  // Version negotiation a /1 reader can do: same family, newer minor.
  std::string Schema = Back.get("schema")->asString();
  EXPECT_EQ(Schema.rfind("sprof.run_report/", 0), 0u);

  // The exact /1 key set, with the /1 shapes the /1 test checks.
  for (const char *Key : {"workload", "config", "profile_run",
                          "baseline_run", "timed_run", "speedup", "metrics"})
    EXPECT_NE(Back.get(Key), nullptr) << Key;
  EXPECT_NE(Back.get("profile_run")->get("stride_profile"), nullptr);
  EXPECT_NE(Back.get("timed_run")->get("classification"), nullptr);
  EXPECT_NE(Back.get("baseline_run")->get("memory"), nullptr);

  // Everything beyond /1 is limited to the documented /2 and /3 additions,
  // so an ignore-unknown-keys reader sees nothing else new.
  for (const auto &[Key, Value] : Back.members()) {
    (void)Value;
    static const std::set<std::string> V1Keys = {
        "schema",    "workload",     "config", "profile_run",
        "baseline_run", "timed_run", "speedup", "metrics", "jobs"};
    if (V1Keys.count(Key))
      continue;
    EXPECT_TRUE(Key == "attribution" || Key == "profile_diff" ||
                Key == "self_profile")
        << Key;
  }

  // A self-diff scores perfect accuracy.
  EXPECT_DOUBLE_EQ(
      Back.get("profile_diff")->get("weighted_accuracy")->asDouble(), 1.0);
  EXPECT_EQ(Back.get("profile_diff")->get("class_flips")->get("ssst")
                ->get("wsst")->asUInt(),
            0u);
}

// PR 3 only asserted the Decoded engine's telemetry tallies; the span
// *nesting* contract matters too: pipeline phases at depth 0, the engine's
// execute span strictly inside them at depth 1, regardless of engine.
TEST(ObsTrace, DecodedEngineSpansNestInsidePipelinePhases) {
  ChaseWorkload W;
  PipelineConfig Config;
  Config.Obs.Enabled = true;
  Config.Obs.TraceDetail = 2;
  Config.Interp.Exec = InterpreterConfig::Engine::Decoded;
  Pipeline P(W, Config);

  ProfileRunResult Prof =
      P.runProfile(ProfilingMethod::EdgeCheck, DataSet::Train);
  (void)P.runPrefetched(DataSet::Ref, Prof.Edges, Prof.Strides);

  const std::vector<TraceEvent> &Events = P.obs()->trace().events();
  ASSERT_FALSE(Events.empty());

  auto Find = [&](const std::string &Name) -> const TraceEvent * {
    for (const TraceEvent &E : Events)
      if (E.Name == Name)
        return &E;
    return nullptr;
  };
  const TraceEvent *RunProfile = Find("run-profile");
  const TraceEvent *TimedRun = Find("timed-run");
  ASSERT_NE(RunProfile, nullptr);
  ASSERT_NE(TimedRun, nullptr);
  EXPECT_EQ(RunProfile->Depth, 0u);
  EXPECT_EQ(TimedRun->Depth, 0u);

  // Every execute span belongs to exactly one enclosing pipeline phase:
  // depth 1 and time-contained in run-profile or timed-run.
  unsigned Executes = 0;
  for (const TraceEvent &E : Events) {
    if (E.Name != "execute")
      continue;
    ++Executes;
    EXPECT_EQ(E.Depth, 1u);
    auto Inside = [&](const TraceEvent *Outer) {
      return E.StartUs >= Outer->StartUs &&
             E.StartUs + E.DurationUs <=
                 Outer->StartUs + Outer->DurationUs;
    };
    EXPECT_TRUE(Inside(RunProfile) || Inside(TimedRun));
  }
  EXPECT_EQ(Executes, 2u);
  // Inner phases of the profile run nest below the phase, too.
  const TraceEvent *Harvest = Find("strideprof-harvest");
  ASSERT_NE(Harvest, nullptr);
  EXPECT_EQ(Harvest->Depth, 1u);
}

TEST(ObsReport, DisabledTelemetryLeavesProfilesBitIdentical) {
  ChaseWorkload W;

  PipelineConfig Off;
  ASSERT_FALSE(Off.Obs.Enabled); // default off
  Pipeline POff(W, Off);

  PipelineConfig On;
  On.Obs.Enabled = true;
  On.Obs.TraceDetail = 2;
  Pipeline POn(W, On);

  ProfileRunResult ROff =
      POff.runProfile(ProfilingMethod::EdgeCheck, DataSet::Train);
  ProfileRunResult ROn =
      POn.runProfile(ProfilingMethod::EdgeCheck, DataSet::Train);

  // Identical profiles, byte for byte, and identical cycle accounting:
  // telemetry only observes.
  std::ostringstream SOff, SOn;
  writeProfiles(ROff.Edges, ROff.Strides, SOff);
  writeProfiles(ROn.Edges, ROn.Strides, SOn);
  EXPECT_EQ(SOff.str(), SOn.str());
  EXPECT_EQ(ROff.Stats.Cycles, ROn.Stats.Cycles);
  EXPECT_EQ(ROff.Stats.Instructions, ROn.Stats.Instructions);
  EXPECT_EQ(ROff.StrideInvocations, ROn.StrideInvocations);

  EXPECT_EQ(POff.obs(), nullptr);
  ASSERT_NE(POn.obs(), nullptr);
  EXPECT_GT(POn.obs()->trace().events().size(), 0u);
}

// -- RunStats accumulation -------------------------------------------------

TEST(ObsReport, RunStatsAccumulate) {
  RunStats A;
  A.Completed = true;
  A.Instructions = 100;
  A.Cycles = 500;
  A.BaseCycles = 300;
  A.MemStallCycles = 200;
  A.LoadRefs = 10;
  A.SiteCounts = {1, 2};
  A.Mem.Levels.resize(1);
  A.Mem.Levels[0].Hits = 5;
  A.ExitValue = 1;

  RunStats B;
  B.Completed = true;
  B.Instructions = 50;
  B.Cycles = 250;
  B.InstrumentationCycles = 25;
  B.LoadRefs = 5;
  B.SiteCounts = {10, 20, 30}; // wider than A
  B.Mem.Levels.resize(2);
  B.Mem.Levels[0].Misses = 3;
  B.ExitValue = 7;

  A += B;
  EXPECT_TRUE(A.Completed);
  EXPECT_EQ(A.Instructions, 150u);
  EXPECT_EQ(A.Cycles, 750u);
  EXPECT_EQ(A.BaseCycles, 300u);
  EXPECT_EQ(A.InstrumentationCycles, 25u);
  EXPECT_EQ(A.LoadRefs, 15u);
  ASSERT_EQ(A.SiteCounts.size(), 3u);
  EXPECT_EQ(A.SiteCounts[0], 11u);
  EXPECT_EQ(A.SiteCounts[1], 22u);
  EXPECT_EQ(A.SiteCounts[2], 30u);
  ASSERT_EQ(A.Mem.Levels.size(), 2u);
  EXPECT_EQ(A.Mem.Levels[0].Hits, 5u);
  EXPECT_EQ(A.Mem.Levels[0].Misses, 3u);
  EXPECT_EQ(A.ExitValue, 7);

  RunStats Incomplete;
  Incomplete.Completed = false;
  A += Incomplete;
  EXPECT_FALSE(A.Completed);
}
