//===- tests/test_extensions.cpp - Section-6 future-work extensions ---------===//
//
// Part of the StrideProf project test suite: the three extensions the
// paper sketches as future work -- use-distance profiling, dependent-load
// prefetching through speculative loads, and the allocation-order effect.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "instrument/Instrumentation.h"
#include "interp/Interpreter.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "prefetch/PrefetchInsertion.h"

#include "TestHelpers.h"
#include <gtest/gtest.h>

using namespace sprof;

//===----------------------------------------------------------------------===//
// SpecLoad opcode semantics.
//===----------------------------------------------------------------------===//

TEST(SpecLoad, ReadsValueWithoutStalling) {
  Module M;
  IRBuilder B(M);
  B.startFunction("main", 0);
  Reg P = B.movImm(0x1000);
  Instruction Spec;
  Spec.Op = Opcode::SpecLoad;
  Spec.Dst = B.newReg();
  Spec.A = Operand::reg(P);
  Spec.Imm = 8;
  B.insert(Spec);
  B.ret(Operand::reg(Spec.Dst));

  SimMemory Mem;
  Mem.write64(0x1008, 77);
  Interpreter I(M, std::move(Mem));
  MemoryHierarchy MH{MemoryConfig()};
  I.attachMemory(&MH);
  RunStats S = I.run();
  EXPECT_EQ(S.ExitValue, 77);
  // No demand-stall cycles: the speculative load issues like a prefetch.
  EXPECT_EQ(S.MemStallCycles, 0u);
  EXPECT_EQ(MH.stats().PrefetchesIssued, 1u);
}

TEST(SpecLoad, VerifierAcceptsAndPrinterPrints) {
  Module M;
  IRBuilder B(M);
  B.startFunction("main", 0);
  Reg P = B.movImm(0x1000);
  Instruction Spec;
  Spec.Op = Opcode::SpecLoad;
  Spec.Dst = B.newReg();
  Spec.A = Operand::reg(P);
  B.insert(Spec);
  B.halt();
  EXPECT_TRUE(isWellFormed(M));
  std::ostringstream OS;
  M.print(OS);
  EXPECT_NE(OS.str().find("load.s"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Use-distance profiling.
//===----------------------------------------------------------------------===//

TEST(UseDistance, GapStatisticTracksGlobalReferences) {
  StrideProfilerConfig C;
  StrideProfiler P(1, C);
  // Site visited at global reference indices 10, 50, 90: gaps of 40.
  P.profile(0, 0x1000, 10);
  P.profile(0, 0x1040, 50);
  P.profile(0, 0x1080, 90);
  StrideProfile SP = StrideProfile::fromProfiler(P);
  EXPECT_EQ(SP.site(0).RefGapCount, 2u);
  EXPECT_DOUBLE_EQ(SP.site(0).avgRefGap(), 40.0);
}

TEST(UseDistance, FilterVetoesLongGapLoads) {
  uint32_t DataSite, NextSite;
  Module M = test::makeChaseModule(DataSite, NextSite);
  EdgeProfile EP(1);
  EP.setFrequency(0, Edge{0, 0}, 1);
  EP.setFrequency(0, Edge{1, 0}, 100000);
  EP.setFrequency(0, Edge{1, 1}, 1);
  EP.setFrequency(0, Edge{2, 0}, 100000);
  StrideProfile SP(M.NumLoadSites);
  StrideSiteSummary &S = SP.site(NextSite);
  S.TotalStrides = 100000;
  S.TopStrides = {{128, 95000}};
  S.RefGapSum = 100000 * 500; // average gap of 500 references
  S.RefGapCount = 100000;

  ClassifierConfig Off;
  EXPECT_FALSE(runFeedback(M, EP, SP, Off).Decisions.empty());

  ClassifierConfig On;
  On.EnableUseDistanceFilter = true;
  On.MaxAvgRefGap = 64.0;
  EXPECT_TRUE(runFeedback(M, EP, SP, On).Decisions.empty());

  // Short gaps survive the filter.
  S.RefGapSum = 100000 * 3;
  EXPECT_FALSE(runFeedback(M, EP, SP, On).Decisions.empty());
}

TEST(UseDistance, InterpreterFeedsGlobalIndices) {
  uint32_t DataSite, NextSite;
  Module M = test::makeChaseModule(DataSite, NextSite);
  instrumentModule(M, ProfilingMethod::NaiveLoop);
  SimMemory Mem;
  test::fillChaseList(Mem, 1000, 64);
  StrideProfilerConfig PC;
  StrideProfiler P(M.NumLoadSites, PC);
  Interpreter I(M, std::move(Mem));
  I.attachProfiler(&P);
  ASSERT_TRUE(I.run().Completed);
  // Both loads execute once per iteration: each site's visits are two
  // global references apart.
  StrideProfile SP = StrideProfile::fromProfiler(P);
  EXPECT_NEAR(SP.site(DataSite).avgRefGap(), 2.0, 0.01);
  EXPECT_NEAR(SP.site(NextSite).avgRefGap(), 2.0, 0.01);
}

//===----------------------------------------------------------------------===//
// Dependent-load prefetching.
//===----------------------------------------------------------------------===//

namespace {

/// Builds `while (p) { q = p->ptr; v = *q; p = p->next; }` over a strided
/// node list pointing at randomly placed payloads, and returns the module,
/// the memory, and the site ids.
struct IndirectSetup {
  Module M;
  SimMemory Mem;
  uint32_t PtrSite, ValSite, NextSite;
};

IndirectSetup makeIndirect(uint64_t Count) {
  IndirectSetup S;
  IRBuilder B(S.M);
  B.startFunction("main", 0);
  Function &F = B.function();
  uint32_t Header = F.newBlock("head");
  uint32_t Body = F.newBlock("body");
  uint32_t Exit = F.newBlock("exit");
  Reg P = B.movImm(0x1000);
  Reg Acc = B.movImm(0);
  B.jmp(Header);
  B.setBlock(Header);
  Reg C = B.cmp(Opcode::CmpNe, Operand::reg(P), Operand::imm(0));
  B.br(Operand::reg(C), Body, Exit);
  B.setBlock(Body);
  Reg Q = B.load(P, 8);
  S.PtrSite = B.lastSiteId();
  Reg V = B.load(Q, 0);
  S.ValSite = B.lastSiteId();
  B.add(Operand::reg(Acc), Operand::reg(V), Acc);
  B.load(P, 0, P);
  S.NextSite = B.lastSiteId();
  B.jmp(Header);
  B.setBlock(Exit);
  B.ret(Operand::reg(Acc));

  // Nodes at constant stride 64; payloads pseudo-randomly scattered.
  uint64_t PayloadBase = 0x4000000;
  uint64_t Addr = 0x1000;
  uint64_t H = 0x9E3779B97F4A7C15ull;
  for (uint64_t I = 0; I != Count; ++I) {
    H ^= H << 13;
    H ^= H >> 7;
    H ^= H << 17;
    uint64_t Payload = PayloadBase + (H % Count) * 64;
    uint64_t Next = I + 1 != Count ? Addr + 64 : 0;
    S.Mem.write64(Addr + 0, static_cast<int64_t>(Next));
    S.Mem.write64(Addr + 8, static_cast<int64_t>(Payload));
    S.Mem.write64(Payload, static_cast<int64_t>(I));
    Addr += 64;
  }
  return S;
}

} // namespace

TEST(DependentPrefetch, PlannerFindsDependentLoads) {
  IndirectSetup S = makeIndirect(4000);
  EdgeProfile EP(1);
  EP.setFrequency(0, Edge{0, 0}, 1);
  EP.setFrequency(0, Edge{1, 0}, 100000);
  EP.setFrequency(0, Edge{1, 1}, 1);
  EP.setFrequency(0, Edge{2, 0}, 100000);
  StrideProfile SP(S.M.NumLoadSites);
  StrideSiteSummary &Base = SP.site(S.PtrSite);
  Base.TotalStrides = 100000;
  Base.TopStrides = {{64, 98000}};
  // The value load has no stride profile worth using.
  StrideSiteSummary &Dep = SP.site(S.ValSite);
  Dep.TotalStrides = 100000;
  Dep.TopStrides = {{8, 900}, {-64, 800}};

  ClassifierConfig Off;
  FeedbackResult R0 = runFeedback(S.M, EP, SP, Off);
  EXPECT_TRUE(R0.DependentDecisions.empty());

  ClassifierConfig On;
  On.EnableDependentPrefetch = true;
  FeedbackResult R1 = runFeedback(S.M, EP, SP, On);
  ASSERT_EQ(R1.DependentDecisions.size(), 1u);
  EXPECT_EQ(R1.DependentDecisions[0].BaseSiteId, S.PtrSite);
  EXPECT_EQ(R1.DependentDecisions[0].DepSiteId, S.ValSite);
  EXPECT_EQ(R1.DependentDecisions[0].BaseStride, 64);

  // Insertion emits a speculative load and one prefetch through it.
  Module M2 = S.M;
  PrefetchInsertionStats Stats = insertPrefetches(M2, R1);
  EXPECT_EQ(Stats.DependentPrefetches, 1u);
  EXPECT_TRUE(isWellFormed(M2));
  unsigned SpecLoads = 0;
  for (const BasicBlock &BB : M2.Functions[0].Blocks)
    for (const Instruction &I : BB.Insts)
      if (I.Op == Opcode::SpecLoad)
        ++SpecLoads;
  EXPECT_EQ(SpecLoads, 1u);
}

TEST(DependentPrefetch, SpeedsUpIndirectChase) {
  IndirectSetup S = makeIndirect(30000); // payload region ~1.9MB
  EdgeProfile EP(1);
  EP.setFrequency(0, Edge{0, 0}, 1);
  EP.setFrequency(0, Edge{1, 0}, 30000);
  EP.setFrequency(0, Edge{1, 1}, 1);
  EP.setFrequency(0, Edge{2, 0}, 30000);
  StrideProfile SP(S.M.NumLoadSites);
  StrideSiteSummary &Base = SP.site(S.PtrSite);
  Base.TotalStrides = 30000;
  Base.TopStrides = {{64, 29500}};

  uint64_t Cycles[2];
  for (int Dep = 0; Dep != 2; ++Dep) {
    ClassifierConfig Cfg;
    Cfg.EnableDependentPrefetch = Dep != 0;
    Module M2 = S.M;
    FeedbackResult FB = runFeedback(M2, EP, SP, Cfg);
    insertPrefetches(M2, FB);
    Interpreter I(M2, S.Mem);
    MemoryHierarchy MH{MemoryConfig()};
    I.attachMemory(&MH);
    RunStats Stats = I.run();
    ASSERT_TRUE(Stats.Completed);
    Cycles[Dep] = Stats.Cycles;
  }
  // Chasing the payload pointer ahead must recover a further large
  // fraction of the stall time.
  EXPECT_LT(Cycles[1], Cycles[0] * 8 / 10);
}
