//===- tests/TestHelpers.h - Shared test fixtures ---------------*- C++ -*-===//
//
// Part of the StrideProf project test suite.
//
//===----------------------------------------------------------------------===//

#ifndef SPROF_TESTS_TESTHELPERS_H
#define SPROF_TESTS_TESTHELPERS_H

#include "interp/SimMemory.h"
#include "ir/IRBuilder.h"
#include "ir/Module.h"

#include <cstdint>
#include <vector>

namespace sprof {
namespace test {

/// Builds a module with a single "main" that chases a linked list at
/// \p Head: `while (p) { v = p->data; p = p->next; }` with next at +0 and
/// data at +8. Returns the module; the data-load and next-load site ids
/// are returned through the out-parameters.
inline Module makeChaseModule(uint32_t &DataSite, uint32_t &NextSite) {
  Module M;
  M.Name = "chase";
  IRBuilder B(M);
  B.startFunction("main", 0);
  Function &F = B.function();
  uint32_t Header = F.newBlock("head");
  uint32_t Body = F.newBlock("body");
  uint32_t Exit = F.newBlock("exit");

  Reg P = B.movImm(0x1000);
  B.jmp(Header);

  B.setBlock(Header);
  Reg C = B.cmp(Opcode::CmpNe, Operand::reg(P), Operand::imm(0));
  B.br(Operand::reg(C), Body, Exit);

  B.setBlock(Body);
  B.load(P, 8);
  DataSite = B.lastSiteId();
  B.load(P, 0, P);
  NextSite = B.lastSiteId();
  B.jmp(Header);

  B.setBlock(Exit);
  B.halt();
  return M;
}

/// Like makeChaseModule, but the chase runs inside an outer pass loop that
/// re-enters it \p Passes times. Needed to exercise the edge-check trip
/// guard, which only activates on loop re-entry (paper Section 3.2: check
/// methods never profile a loop nest executed only once).
inline Module makePassesChaseModule(int64_t Passes, uint32_t &DataSite,
                                    uint32_t &NextSite) {
  Module M;
  M.Name = "chase.passes";
  IRBuilder B(M);
  B.startFunction("main", 0);
  Function &F = B.function();
  uint32_t OuterHead = F.newBlock("outer.head");
  uint32_t OuterBody = F.newBlock("outer.body");
  uint32_t Header = F.newBlock("head");
  uint32_t Body = F.newBlock("body");
  uint32_t Latch = F.newBlock("outer.latch");
  uint32_t Exit = F.newBlock("exit");

  Reg P = B.newReg();
  Reg K = B.movImm(0);
  B.jmp(OuterHead);

  B.setBlock(OuterHead);
  Reg C0 = B.cmp(Opcode::CmpLt, Operand::reg(K), Operand::imm(Passes));
  B.br(Operand::reg(C0), OuterBody, Exit);

  B.setBlock(OuterBody);
  B.mov(Operand::imm(0x1000), P);
  B.jmp(Header);

  B.setBlock(Header);
  Reg C = B.cmp(Opcode::CmpNe, Operand::reg(P), Operand::imm(0));
  B.br(Operand::reg(C), Body, Latch);

  B.setBlock(Body);
  B.load(P, 8);
  DataSite = B.lastSiteId();
  B.load(P, 0, P);
  NextSite = B.lastSiteId();
  B.jmp(Header);

  B.setBlock(Latch);
  B.add(Operand::reg(K), Operand::imm(1), K);
  B.jmp(OuterHead);

  B.setBlock(Exit);
  B.halt();
  return M;
}

/// Writes a linked list with constant stride into \p Mem: \p Count nodes of
/// \p Stride bytes starting at 0x1000; next at +0, data at +8.
inline void fillChaseList(SimMemory &Mem, uint64_t Count, uint64_t Stride) {
  uint64_t Addr = 0x1000;
  for (uint64_t I = 0; I != Count; ++I) {
    uint64_t Next = I + 1 != Count ? Addr + Stride : 0;
    Mem.write64(Addr + 0, static_cast<int64_t>(Next));
    Mem.write64(Addr + 8, static_cast<int64_t>(I));
    Addr += Stride;
  }
}

} // namespace test
} // namespace sprof

#endif // SPROF_TESTS_TESTHELPERS_H
