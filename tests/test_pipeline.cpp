//===- tests/test_pipeline.cpp - End-to-end pipeline tests ------------------===//
//
// Part of the StrideProf project test suite: integration tests running the
// full instrument -> profile -> feedback -> prefetch -> measure pipeline
// over the synthetic workloads.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace sprof;

TEST(Workloads, AllBuildWellFormedPrograms) {
  for (const auto &W : makeSpecIntSuite()) {
    for (DataSet DS : {DataSet::Train, DataSet::Ref}) {
      Program P = W->build(DS);
      std::vector<std::string> Errors = verifyModule(P.M);
      EXPECT_TRUE(Errors.empty())
          << W->info().Name << "/" << dataSetName(DS) << ": "
          << (Errors.empty() ? "" : Errors.front());
      EXPECT_GT(P.M.NumLoadSites, 0u) << W->info().Name;
    }
  }
}

TEST(Workloads, BuildsAreDeterministic) {
  auto W = makeMcfLike();
  Program A = W->build(DataSet::Train);
  Program B = W->build(DataSet::Train);
  Interpreter IA(A.M, std::move(A.Memory));
  Interpreter IB(B.M, std::move(B.Memory));
  RunStats SA = IA.run();
  RunStats SB = IB.run();
  EXPECT_EQ(SA.ExitValue, SB.ExitValue);
  EXPECT_EQ(SA.Instructions, SB.Instructions);
}

TEST(Workloads, TrainAndRefDiffer) {
  auto W = makeParserLike();
  Program T = W->build(DataSet::Train);
  Program R = W->build(DataSet::Ref);
  Interpreter IT(T.M, std::move(T.Memory));
  Interpreter IR(R.M, std::move(R.Memory));
  EXPECT_LT(IT.run().Instructions, IR.run().Instructions);
}

TEST(Workloads, SuiteHasTwelveFigure15Entries) {
  auto Suite = makeSpecIntSuite();
  ASSERT_EQ(Suite.size(), 12u);
  EXPECT_EQ(Suite[0]->info().Name, "164.gzip");
  EXPECT_EQ(Suite[3]->info().Name, "181.mcf");
  EXPECT_EQ(Suite[11]->info().Name, "300.twolf");
  EXPECT_EQ(Suite[6]->info().Lang, "C++"); // eon
  EXPECT_NE(makeWorkloadByName("254.gap"), nullptr);
  EXPECT_EQ(makeWorkloadByName("999.none"), nullptr);
}

TEST(Pipeline, ProfileRunProducesEdgeAndStrideProfiles) {
  auto W = makeMcfLike();
  Pipeline P(*W);
  ProfileRunResult R = P.runProfile(ProfilingMethod::EdgeCheck,
                                    DataSet::Train,
                                    /*WithMemorySystem=*/false);
  EXPECT_TRUE(R.Stats.Completed);
  EXPECT_GT(R.StrideProcessed, 0u);

  // Some site must carry a strong 128-byte stride (the arc chain).
  bool Found128 = false;
  for (uint32_t S = 0; S != R.Strides.numSites(); ++S) {
    const StrideSiteSummary &Sum = R.Strides.site(S);
    if (Sum.TotalStrides > 1000 && !Sum.TopStrides.empty() &&
        Sum.TopStrides[0].Value == 128 &&
        Sum.top1Freq() * 10 > Sum.TotalStrides * 9)
      Found128 = true;
  }
  EXPECT_TRUE(Found128);
}

TEST(Pipeline, McfGetsLargeSpeedup) {
  auto W = makeMcfLike();
  Pipeline P(*W);
  double S = P.speedup(ProfilingMethod::EdgeCheck, DataSet::Train,
                       DataSet::Train);
  EXPECT_GT(S, 1.15);
}

TEST(Pipeline, GapGetsPmstSpeedup) {
  auto W = makeGapLike();
  Pipeline P(*W);
  ProfileRunResult R = P.runProfile(ProfilingMethod::EdgeCheck,
                                    DataSet::Train, false);
  TimedRunResult T = P.runPrefetched(DataSet::Train, R.Edges, R.Strides);
  EXPECT_GT(T.Prefetches.PmstPrefetches, 0u);
  RunStats Base = P.runBaseline(DataSet::Train);
  EXPECT_GT(static_cast<double>(Base.Cycles) /
                static_cast<double>(T.Stats.Cycles),
            1.02);
}

TEST(Pipeline, StrideFreeWorkloadIsNotSlowedDown) {
  // crafty must not regress: prefetching decisions should be absent or
  // harmless.
  auto W = makeCraftyLike();
  Pipeline P(*W);
  double S = P.speedup(ProfilingMethod::EdgeCheck, DataSet::Train,
                       DataSet::Train);
  EXPECT_GT(S, 0.97);
  EXPECT_LT(S, 1.03);
}

TEST(Pipeline, NaiveAllAlsoPrefetchesOutLoopLoads) {
  auto W = makeParserLike();
  Pipeline P(*W);
  ProfileRunResult A = P.runProfile(ProfilingMethod::EdgeCheck,
                                    DataSet::Train, false);
  ProfileRunResult B = P.runProfile(ProfilingMethod::NaiveAll,
                                    DataSet::Train, false);
  TimedRunResult TA = P.runPrefetched(DataSet::Train, A.Edges, A.Strides);
  TimedRunResult TB = P.runPrefetched(DataSet::Train, B.Edges, B.Strides);
  EXPECT_EQ(TA.Prefetches.OutLoopPrefetches, 0u);
  EXPECT_GT(TB.Prefetches.OutLoopPrefetches, 0u);
}

TEST(Pipeline, ProfilingOverheadOrdering) {
  // naive-all > naive-loop > edge-check in instrumented-run cycles, and
  // sampling reduces each (Figure 20's ordering).
  auto W = makeParserLike();
  Pipeline P(*W);
  auto Cycles = [&](ProfilingMethod M) {
    return P.runProfile(M, DataSet::Train).Stats.Cycles;
  };
  uint64_t EdgeOnly = Cycles(ProfilingMethod::EdgeOnly);
  uint64_t EdgeCheck = Cycles(ProfilingMethod::EdgeCheck);
  uint64_t NaiveLoop = Cycles(ProfilingMethod::NaiveLoop);
  uint64_t NaiveAll = Cycles(ProfilingMethod::NaiveAll);
  uint64_t SampleEdgeCheck = Cycles(ProfilingMethod::SampleEdgeCheck);
  EXPECT_GT(EdgeCheck, EdgeOnly);
  EXPECT_GT(NaiveLoop, EdgeCheck);
  EXPECT_GT(NaiveAll, NaiveLoop);
  EXPECT_LT(SampleEdgeCheck, EdgeCheck);
}

TEST(Pipeline, SampledProfilesStillFindDominantStrides) {
  auto W = makeMcfLike();
  Pipeline P(*W);
  ProfileRunResult R = P.runProfile(ProfilingMethod::SampleEdgeCheck,
                                    DataSet::Train, false);
  bool Found128 = false;
  for (uint32_t S = 0; S != R.Strides.numSites(); ++S) {
    const StrideSiteSummary &Sum = R.Strides.site(S);
    if (!Sum.TopStrides.empty() && Sum.TopStrides[0].Value == 128 &&
        Sum.TotalStrides > 50)
      Found128 = true;
  }
  EXPECT_TRUE(Found128);
}
