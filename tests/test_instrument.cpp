//===- tests/test_instrument.cpp - Instrumentation pass tests ---------------===//
//
// Part of the StrideProf project test suite.
//
//===----------------------------------------------------------------------===//

#include "instrument/Instrumentation.h"
#include "interp/Interpreter.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "profile/ProfileData.h"
#include "profile/StrideProfiler.h"

#include "TestHelpers.h"
#include <gtest/gtest.h>

using namespace sprof;

namespace {

/// Counts instructions with opcode \p Op across the module.
unsigned countOps(const Module &M, Opcode Op) {
  unsigned N = 0;
  for (const Function &F : M.Functions)
    for (const BasicBlock &BB : F.Blocks)
      for (const Instruction &I : BB.Insts)
        if (I.Op == Op)
          ++N;
  return N;
}

/// Instruments a chase module over a \p Count long list and runs it,
/// returning the profiler and interpreter state.
struct InstrumentedRun {
  Module M;
  InstrumentationResult Instr;
  RunStats Stats;
  EdgeProfile Edges;
  uint64_t StrideProcessed = 0;
};

InstrumentedRun runInstrumented(ProfilingMethod Method, uint64_t Count,
                                uint64_t Stride = 64, int64_t Passes = 0) {
  uint32_t D, N;
  InstrumentedRun R;
  R.M = Passes > 0 ? test::makePassesChaseModule(Passes, D, N)
                   : test::makeChaseModule(D, N);
  R.Instr = instrumentModule(R.M, Method);
  EXPECT_TRUE(isWellFormed(R.M));

  SimMemory Mem;
  test::fillChaseList(Mem, Count, Stride);
  StrideProfilerConfig PC;
  PC.Sampling.Enabled = methodUsesSampling(Method);
  StrideProfiler P(R.M.NumLoadSites, PC);
  Interpreter I(R.M, std::move(Mem));
  I.attachProfiler(&P);
  R.Stats = I.run();
  EXPECT_TRUE(R.Stats.Completed);

  R.Edges = EdgeProfile(R.M.Functions.size());
  for (uint32_t FI = 0; FI != R.M.Functions.size(); ++FI)
    for (const auto &[E, Ctr] : R.Instr.EdgeCounters[FI])
      R.Edges.setFrequency(FI, E, I.counters()[Ctr]);
  R.StrideProcessed = P.totalProcessed();
  return R;
}

} // namespace

TEST(Instrumentation, MethodPredicates) {
  EXPECT_TRUE(methodUsesSampling(ProfilingMethod::SampleEdgeCheck));
  EXPECT_FALSE(methodUsesSampling(ProfilingMethod::EdgeCheck));
  EXPECT_TRUE(methodProfilesOutLoop(ProfilingMethod::NaiveAll));
  EXPECT_TRUE(methodProfilesOutLoop(ProfilingMethod::SampleNaiveAll));
  EXPECT_FALSE(methodProfilesOutLoop(ProfilingMethod::EdgeCheck));
  EXPECT_EQ(baseMethod(ProfilingMethod::SampleNaiveLoop),
            ProfilingMethod::NaiveLoop);
  EXPECT_EQ(paperStrideMethods().size(), 6u);
}

TEST(Instrumentation, EdgeOnlyInsertsNoStrideCalls) {
  uint32_t D, N;
  Module M = test::makeChaseModule(D, N);
  InstrumentationResult R = instrumentModule(M, ProfilingMethod::EdgeOnly);
  EXPECT_TRUE(isWellFormed(M));
  EXPECT_EQ(countOps(M, Opcode::ProfStride), 0u);
  EXPECT_GT(countOps(M, Opcode::ProfCounterInc), 0u);
  EXPECT_TRUE(R.ProfiledSites.empty());
  // All four original edges have counters.
  EXPECT_EQ(R.EdgeCounters[0].size(), 4u);
}

TEST(Instrumentation, EdgeProfileMatchesExecution) {
  InstrumentedRun R = runInstrumented(ProfilingMethod::EdgeOnly, 10);
  const Function &F = R.M.Functions[0];
  // head(1) -> body(2) executed 10 times; body -> head 10 times;
  // entry -> head once; head -> exit once. Identify edges by block names.
  uint64_t BodyIn = 0, BackEdge = 0, EnterEdge = 0, ExitEdge = 0;
  for (const auto &[E, Ctr] : R.Instr.EdgeCounters[0]) {
    (void)Ctr;
    uint64_t Freq = R.Edges.frequency(0, E);
    const std::string &From = F.Blocks[E.From].Name;
    const std::string &To = F.Blocks[F.edgeDest(E)].Name;
    // Edge targets may have been redirected to split blocks; resolve one
    // level of split indirection.
    std::string RealTo = To;
    if (RealTo.find(".split") != std::string::npos) {
      const BasicBlock &SB = F.Blocks[F.edgeDest(E)];
      RealTo = F.Blocks[SB.successor(0)].Name;
    }
    if (From == "head" && RealTo == "body")
      BodyIn = Freq;
    else if (From == "body" && RealTo == "head")
      BackEdge = Freq;
    else if (From == "entry" && RealTo == "head")
      EnterEdge = Freq;
    else if (From == "head" && RealTo == "exit")
      ExitEdge = Freq;
  }
  EXPECT_EQ(BodyIn, 10u);
  EXPECT_EQ(BackEdge, 10u);
  EXPECT_EQ(EnterEdge, 1u);
  EXPECT_EQ(ExitEdge, 1u);
}

TEST(Instrumentation, NaiveLoopProfilesInLoopLoads) {
  uint32_t D, N;
  Module M = test::makeChaseModule(D, N);
  InstrumentationResult R = instrumentModule(M, ProfilingMethod::NaiveLoop);
  EXPECT_TRUE(isWellFormed(M));
  // Both loads are in the loop: two strideProf calls, unguarded.
  EXPECT_EQ(countOps(M, Opcode::ProfStride), 2u);
  EXPECT_EQ(R.ProfiledSites.size(), 2u);
  for (const Function &F : M.Functions)
    for (const BasicBlock &BB : F.Blocks)
      for (const Instruction &I : BB.Insts)
        if (I.Op == Opcode::ProfStride)
          EXPECT_EQ(I.Pred, NoReg);
}

TEST(Instrumentation, NaiveAllProfilesOutLoopLoads) {
  // Add an out-loop load before the loop.
  Module M;
  IRBuilder B(M);
  B.startFunction("main", 0);
  Reg P = B.movImm(0x1000);
  B.load(P, 16); // out-loop load
  Function &F = B.function();
  uint32_t Header = F.newBlock("head");
  uint32_t Body = F.newBlock("body");
  uint32_t Exit = F.newBlock("exit");
  B.jmp(Header);
  B.setBlock(Header);
  Reg C = B.cmp(Opcode::CmpNe, Operand::reg(P), Operand::imm(0));
  B.br(Operand::reg(C), Body, Exit);
  B.setBlock(Body);
  B.load(P, 0, P);
  B.jmp(Header);
  B.setBlock(Exit);
  B.halt();

  Module MLoop = M;
  instrumentModule(MLoop, ProfilingMethod::NaiveLoop);
  EXPECT_EQ(countOps(MLoop, Opcode::ProfStride), 1u);

  Module MAll = M;
  instrumentModule(MAll, ProfilingMethod::NaiveAll);
  EXPECT_EQ(countOps(MAll, Opcode::ProfStride), 2u);
}

TEST(Instrumentation, EdgeCheckGuardsWithPredicate) {
  uint32_t D, N;
  Module M = test::makeChaseModule(D, N);
  InstrumentationResult R = instrumentModule(M, ProfilingMethod::EdgeCheck);
  EXPECT_TRUE(isWellFormed(M));
  // The two loads form one equivalent set: one representative profiled.
  EXPECT_EQ(countOps(M, Opcode::ProfStride), 1u);
  EXPECT_EQ(R.ProfiledSites.size(), 1u);
  for (const Function &F : M.Functions)
    for (const BasicBlock &BB : F.Blocks)
      for (const Instruction &I : BB.Insts)
        if (I.Op == Opcode::ProfStride)
          EXPECT_NE(I.Pred, NoReg);
  // Trip-check code exists: counter reads plus a shift and compare.
  EXPECT_GT(countOps(M, Opcode::ProfCounterRead), 0u);
  EXPECT_GT(countOps(M, Opcode::Shr), 0u);
}

TEST(Instrumentation, EdgeCheckSkipsLowTripLoops) {
  // 100-iteration loop (< TT=128): the guard must keep strideProf silent
  // no matter how often the loop nest re-runs.
  InstrumentedRun R =
      runInstrumented(ProfilingMethod::EdgeCheck, 100, 64, /*Passes=*/5);
  EXPECT_EQ(R.StrideProcessed, 0u);
}

TEST(Instrumentation, EdgeCheckSkipsOnceExecutedLoopNests) {
  // Paper Section 3.2: the check methods never profile a loop nest that is
  // executed only once, because the guard is evaluated before the loop has
  // accumulated any frequency.
  InstrumentedRun R = runInstrumented(ProfilingMethod::EdgeCheck, 5000);
  EXPECT_EQ(R.StrideProcessed, 0u);
}

TEST(Instrumentation, EdgeCheckActivatesOnReentry) {
  // Three passes: the guard is off for pass 1, on for passes 2 and 3.
  InstrumentedRun R =
      runInstrumented(ProfilingMethod::EdgeCheck, 2000, 64, /*Passes=*/3);
  EXPECT_GE(R.StrideProcessed, 2 * 2000u);
  EXPECT_LT(R.StrideProcessed, 3 * 2000u);
}

TEST(Instrumentation, NaiveLoopProfilesLowTripLoops) {
  InstrumentedRun R = runInstrumented(ProfilingMethod::NaiveLoop, 100);
  // Naive-loop has no trip guard: every in-loop reference processed.
  EXPECT_EQ(R.StrideProcessed, 200u);
}

TEST(Instrumentation, NaiveLoopProfilesOnceExecutedLoopNests) {
  // This is the profile difference the paper blames for naive-loop's
  // slightly different parser/mcf results (Section 4.1).
  InstrumentedRun R = runInstrumented(ProfilingMethod::NaiveLoop, 5000);
  EXPECT_EQ(R.StrideProcessed, 2 * 5000u);
}

TEST(Instrumentation, BlockCheckMatchesEdgeCheckDecision) {
  // The paper argues block-check and edge-check produce the same stride
  // profile. Run both on the same program and compare processed counts.
  InstrumentedRun A =
      runInstrumented(ProfilingMethod::EdgeCheck, 3000, 64, /*Passes=*/3);
  InstrumentedRun B =
      runInstrumented(ProfilingMethod::BlockCheck, 3000, 64, /*Passes=*/3);
  EXPECT_TRUE(isWellFormed(B.M));
  EXPECT_GT(A.StrideProcessed, 0u);
  EXPECT_EQ(A.StrideProcessed, B.StrideProcessed);
}

TEST(Instrumentation, LoopInvariantAddressesNotProfiled) {
  // A loop load from a loop-invariant address must be skipped by
  // edge-check.
  Module M;
  IRBuilder B(M);
  B.startFunction("main", 0);
  Function &F = B.function();
  uint32_t Header = F.newBlock("head");
  uint32_t Body = F.newBlock("body");
  uint32_t Exit = F.newBlock("exit");
  Reg Base = B.movImm(0x1000);
  Reg I = B.movImm(0);
  B.jmp(Header);
  B.setBlock(Header);
  Reg C = B.cmp(Opcode::CmpLt, Operand::reg(I), Operand::imm(1000));
  B.br(Operand::reg(C), Body, Exit);
  B.setBlock(Body);
  B.load(Base, 0); // invariant address
  B.add(Operand::reg(I), Operand::imm(1), I);
  B.jmp(Header);
  B.setBlock(Exit);
  B.halt();

  InstrumentationResult R = instrumentModule(M, ProfilingMethod::EdgeCheck);
  EXPECT_EQ(countOps(M, Opcode::ProfStride), 0u);
  EXPECT_TRUE(R.ProfiledSites.empty());

  // Naive-loop, by contrast, profiles it.
  Module M2;
  IRBuilder B2(M2);
  B2.startFunction("main", 0);
  B2.halt();
  (void)M2;
}

TEST(Instrumentation, SampledMethodsShareInstrumentationShape) {
  uint32_t D, N;
  Module M1 = test::makeChaseModule(D, N);
  Module M2 = test::makeChaseModule(D, N);
  instrumentModule(M1, ProfilingMethod::EdgeCheck);
  instrumentModule(M2, ProfilingMethod::SampleEdgeCheck);
  EXPECT_EQ(countOps(M1, Opcode::ProfStride),
            countOps(M2, Opcode::ProfStride));
  EXPECT_EQ(countOps(M1, Opcode::ProfCounterInc),
            countOps(M2, Opcode::ProfCounterInc));
}
