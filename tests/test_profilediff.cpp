//===- tests/test_profilediff.cpp - Profile-accuracy diff tests ------------===//
//
// Part of the StrideProf project test suite.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// diffStrideProfiles() is the Figures 23-25 accuracy methodology in code:
/// per-site top-stride agreement, classification-flip table, and a
/// reference-weighted accuracy score. These tests pin its scoring rules on
/// hand-built profiles: a self-diff is exactly 1.0, a class flip lands in
/// exactly one Flips cell, weights come from the reference (A) side, and
/// empty/size-mismatched profiles neither crash nor divide by zero.
///
//===----------------------------------------------------------------------===//

#include "profile/ProfileDiff.h"

#include <gtest/gtest.h>

using namespace sprof;

namespace {

StrideSiteSummary ssstSite(uint32_t Site, int64_t Stride = 64) {
  StrideSiteSummary S;
  S.SiteId = Site;
  S.TotalStrides = 1000;
  S.TopStrides = {{Stride, 900}};
  return S;
}

StrideSiteSummary pmstSite(uint32_t Site) {
  StrideSiteSummary S;
  S.SiteId = Site;
  S.TotalStrides = 1000;
  S.NumZeroDiff = 450;
  S.TopStrides = {{8, 200}, {16, 200}, {24, 150}, {32, 100}};
  return S;
}

StrideSiteSummary noneSite(uint32_t Site) {
  StrideSiteSummary S;
  S.SiteId = Site;
  S.TotalStrides = 1000;
  S.TopStrides = {{8, 100}};
  return S;
}

uint64_t flipsOffDiagonal(const ProfileDiffResult &R) {
  uint64_t Off = 0;
  for (size_t A = 0; A != NumStrideClasses; ++A)
    for (size_t B = 0; B != NumStrideClasses; ++B)
      if (A != B)
        Off += R.Flips[A][B];
  return Off;
}

TEST(ProfileDiff, SelfDiffScoresPerfect) {
  StrideProfile P(3);
  P.site(0) = ssstSite(0);
  P.site(1) = pmstSite(1);
  P.site(2) = noneSite(2);

  ProfileDiffResult R = diffStrideProfiles(P, P);
  EXPECT_EQ(R.SitesCompared, 3u);
  EXPECT_EQ(R.TopStrideMatches, 3u);
  EXPECT_EQ(R.ClassMatches, 3u);
  EXPECT_DOUBLE_EQ(R.TopStrideAgreement, 1.0);
  EXPECT_DOUBLE_EQ(R.ClassAgreement, 1.0);
  EXPECT_DOUBLE_EQ(R.WeightedAccuracy, 1.0);
  EXPECT_EQ(flipsOffDiagonal(R), 0u);
  EXPECT_EQ(R.Flips[static_cast<size_t>(StrideClass::SSST)]
                   [static_cast<size_t>(StrideClass::SSST)],
            1u);
  for (const SiteDiffEntry &E : R.Sites) {
    EXPECT_TRUE(E.TopStrideMatch);
    EXPECT_DOUBLE_EQ(E.Top4Overlap, 1.0);
    EXPECT_DOUBLE_EQ(E.Score, 1.0);
  }
}

TEST(ProfileDiff, ClassFlipLandsInOneCellAndLowersScore) {
  StrideProfile A(2), B(2);
  A.site(0) = ssstSite(0);
  A.site(1) = ssstSite(1, 8);
  B.site(0) = ssstSite(0);   // unchanged
  B.site(1) = noneSite(1);   // sampled run demoted the site

  ProfileDiffResult R = diffStrideProfiles(A, B);
  EXPECT_EQ(R.SitesCompared, 2u);
  EXPECT_EQ(R.ClassMatches, 1u);
  EXPECT_EQ(R.Flips[static_cast<size_t>(StrideClass::SSST)]
                   [static_cast<size_t>(StrideClass::None)],
            1u);
  EXPECT_EQ(flipsOffDiagonal(R), 1u);
  EXPECT_LT(R.WeightedAccuracy, 1.0);

  const SiteDiffEntry &Flipped = R.Sites[1];
  EXPECT_EQ(Flipped.Site, 1u);
  EXPECT_EQ(Flipped.ClassA, StrideClass::SSST);
  EXPECT_EQ(Flipped.ClassB, StrideClass::None);
  // Same dominant stride value (8), so the top-stride half still agrees;
  // only the classification half of the score is lost.
  EXPECT_TRUE(Flipped.TopStrideMatch);
  EXPECT_LT(Flipped.Score, 1.0);
}

TEST(ProfileDiff, TopStrideDisagreementZeroesOverlap) {
  StrideProfile A(1), B(1);
  A.site(0) = ssstSite(0, 64);
  B.site(0) = ssstSite(0, 128);

  ProfileDiffResult R = diffStrideProfiles(A, B);
  ASSERT_EQ(R.Sites.size(), 1u);
  EXPECT_FALSE(R.Sites[0].TopStrideMatch);
  EXPECT_DOUBLE_EQ(R.Sites[0].Top4Overlap, 0.0);
  // Classes still agree (both SSST), so the score is exactly the class
  // half: 0.5 * 1 + 0.5 * 0.
  EXPECT_DOUBLE_EQ(R.Sites[0].Score, 0.5);
  EXPECT_DOUBLE_EQ(R.WeightedAccuracy, 0.5);
}

TEST(ProfileDiff, WeightingUsesReferenceSide) {
  // Site 0 carries 10x the reference weight of site 1; site 0 agrees
  // perfectly, site 1 flips entirely. The weighted score must sit near
  // site 0's 1.0, not at the unweighted midpoint.
  StrideProfile A(2), B(2);
  A.site(0) = ssstSite(0);
  A.site(0).TotalStrides = 10000;
  A.site(0).TopStrides = {{64, 9000}};
  A.site(1) = ssstSite(1, 8);
  B.site(0) = A.site(0);
  B.site(1) = noneSite(1);
  B.site(1).TopStrides = {{120, 100}};

  ProfileDiffResult R = diffStrideProfiles(A, B);
  // Site 1 score: class flip (0) + zero top-4 overlap (0) = 0.
  // Weighted: (10000*1.0 + 1000*0.0) / 11000.
  EXPECT_NEAR(R.WeightedAccuracy, 10000.0 / 11000.0, 1e-12);
  EXPECT_DOUBLE_EQ(R.ClassAgreement, 0.5);
}

TEST(ProfileDiff, EmptyAndInactiveSitesAreSkipped) {
  StrideProfile A, B;
  ProfileDiffResult Empty = diffStrideProfiles(A, B);
  EXPECT_EQ(Empty.NumSites, 0u);
  EXPECT_EQ(Empty.SitesCompared, 0u);
  EXPECT_DOUBLE_EQ(Empty.WeightedAccuracy, 0.0);

  // Sites inactive on both sides are not compared; a site active on only
  // one side is.
  StrideProfile C(3), D(3);
  C.site(1) = ssstSite(1);
  ProfileDiffResult R = diffStrideProfiles(C, D);
  EXPECT_EQ(R.SitesCompared, 1u);
  ASSERT_EQ(R.Sites.size(), 1u);
  EXPECT_EQ(R.Sites[0].Site, 1u);
  EXPECT_FALSE(R.Sites[0].TopStrideMatch);
  EXPECT_EQ(R.Sites[0].ClassB, StrideClass::None);
}

TEST(ProfileDiff, SizeMismatchComparesTheUnion) {
  // A sampled run that never reached the later sites yields a shorter
  // profile; the diff still walks the union of site ids.
  StrideProfile A(4), B(2);
  A.site(0) = ssstSite(0);
  A.site(3) = ssstSite(3, 16);
  B.site(0) = ssstSite(0);

  ProfileDiffResult R = diffStrideProfiles(A, B);
  EXPECT_EQ(R.NumSites, 4u);
  EXPECT_EQ(R.SitesCompared, 2u);
  EXPECT_EQ(R.TopStrideMatches, 1u);
  EXPECT_EQ(R.Sites[1].Site, 3u);
  EXPECT_EQ(R.Sites[1].WeightB, 0u);
}

} // namespace
