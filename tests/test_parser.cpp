//===- tests/test_parser.cpp - Textual IR parser tests ----------------------===//
//
// Part of the StrideProf project test suite: the parser must round-trip
// everything the printer emits -- plain modules, instrumented modules
// (profiling pseudo-ops, predication), and prefetched modules (speculative
// loads) -- preserving both the text and the behaviour.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "instrument/Instrumentation.h"
#include "interp/Interpreter.h"
#include "ir/Parser.h"
#include "ir/Verifier.h"
#include "prefetch/PrefetchInsertion.h"

#include "TestHelpers.h"
#include <gtest/gtest.h>

#include <sstream>

using namespace sprof;

namespace {

std::string printToString(const Module &M) {
  std::ostringstream OS;
  M.print(OS);
  return OS.str();
}

/// Asserts text round-trip: print -> parse -> print yields identical text,
/// and the reparsed module verifies.
void expectRoundTrip(const Module &M, const std::string &What) {
  std::string Text = printToString(M);
  ParseResult R = parseModule(Text);
  ASSERT_TRUE(R.Ok) << What << ": " << R.Error;
  EXPECT_TRUE(isWellFormed(R.M)) << What;
  EXPECT_EQ(printToString(R.M), Text) << What;
}

} // namespace

TEST(Parser, RoundTripsChaseModule) {
  uint32_t D, N;
  Module M = test::makeChaseModule(D, N);
  expectRoundTrip(M, "chase");
}

TEST(Parser, RoundTripsAllWorkloads) {
  for (const auto &W : makeSpecIntSuite()) {
    Program P = W->build(DataSet::Train);
    expectRoundTrip(P.M, W->info().Name);
  }
}

TEST(Parser, RoundTripsInstrumentedModules) {
  for (ProfilingMethod Method :
       {ProfilingMethod::EdgeOnly, ProfilingMethod::EdgeCheck,
        ProfilingMethod::BlockCheck, ProfilingMethod::NaiveAll}) {
    auto W = makeParserLike();
    Program P = W->build(DataSet::Train);
    instrumentModule(P.M, Method);
    expectRoundTrip(P.M, profilingMethodName(Method));
  }
}

TEST(Parser, RoundTripsPrefetchedModules) {
  auto W = makeGapLike();
  Pipeline Pl(*W);
  ProfileRunResult Prof = Pl.runProfile(ProfilingMethod::EdgeCheck,
                                        DataSet::Train, false);
  Program P = W->build(DataSet::Train);
  ClassifierConfig Cfg;
  Cfg.EnableWsstPrefetch = true;
  Cfg.EnableDependentPrefetch = true;
  FeedbackResult FB = runFeedback(P.M, Prof.Edges, Prof.Strides, Cfg);
  insertPrefetches(P.M, FB);
  expectRoundTrip(P.M, "prefetched gap");
}

TEST(Parser, ReparsedModuleBehavesIdentically) {
  auto W = makeGccLike();
  Program P = W->build(DataSet::Train);
  Interpreter I1(P.M, P.Memory);
  RunStats S1 = I1.run();

  ParseResult R = parseModule(printToString(P.M));
  ASSERT_TRUE(R.Ok) << R.Error;
  Interpreter I2(R.M, P.Memory);
  RunStats S2 = I2.run();
  EXPECT_EQ(S1.ExitValue, S2.ExitValue);
  EXPECT_EQ(S1.Instructions, S2.Instructions);
  EXPECT_EQ(S1.LoadRefs, S2.LoadRefs);
}

TEST(Parser, PreservesCallsAndPredication) {
  Module M;
  IRBuilder B(M);
  uint32_t Helper = B.startFunction("helper.fn", 2);
  {
    Reg Sum = B.add(Operand::reg(0), Operand::reg(1));
    B.ret(Operand::reg(Sum));
  }
  B.startFunction("main", 0);
  M.EntryFunction = 1;
  Reg P = B.movImm(1);
  Instruction Guarded;
  Guarded.Op = Opcode::Mov;
  Guarded.Dst = B.newReg();
  Guarded.A = Operand::imm(-7);
  Guarded.Pred = P;
  B.insert(Guarded);
  Reg C = B.call(Helper, {Operand::reg(Guarded.Dst), Operand::imm(10)},
                 B.newReg());
  B.ret(Operand::reg(C));
  expectRoundTrip(M, "calls+predication");

  ParseResult R = parseModule(printToString(M));
  ASSERT_TRUE(R.Ok);
  R.M.EntryFunction = 1;
  Interpreter I(R.M, SimMemory());
  EXPECT_EQ(I.run().ExitValue, 3);
}

TEST(Parser, ReportsUnknownMnemonic) {
  ParseResult R = parseModule("module m\n"
                              "func main(params=0, regs=1) {\n"
                              "  entry:\n"
                              "    r0 = frobnicate 1, 2\n"
                              "}\n");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("unknown mnemonic"), std::string::npos);
}

TEST(Parser, ReportsUnknownBranchTarget) {
  ParseResult R = parseModule("module m\n"
                              "func main(params=0, regs=1) {\n"
                              "  entry:\n"
                              "    jmp nowhere\n"
                              "}\n");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("unknown branch target"), std::string::npos);
}

TEST(Parser, ReportsDuplicateBlockNames) {
  ParseResult R = parseModule("module m\n"
                              "func main(params=0, regs=1) {\n"
                              "  entry:\n"
                              "    halt\n"
                              "  entry:\n"
                              "    halt\n"
                              "}\n");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("duplicate block name"), std::string::npos);
}

TEST(Parser, ReportsUnknownCallee) {
  ParseResult R = parseModule("module m\n"
                              "func main(params=0, regs=1) {\n"
                              "  entry:\n"
                              "    r0 = call ghost(1)\n"
                              "    halt\n"
                              "}\n");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("unknown function"), std::string::npos);
}

TEST(Parser, RejectsGarbage) {
  EXPECT_FALSE(parseModule("not an ir file").Ok);
  EXPECT_FALSE(parseModule("").Ok);
}
