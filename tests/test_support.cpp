//===- tests/test_support.cpp - Support library unit tests ------------------===//
//
// Part of the StrideProf project test suite.
//
//===----------------------------------------------------------------------===//

#include "support/Random.h"
#include "support/Stats.h"
#include "support/Table.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace sprof;

TEST(Random, DeterministicForSeed) {
  Rng A(42), B(42), C(43);
  for (int I = 0; I != 100; ++I) {
    uint64_t VA = A.next();
    EXPECT_EQ(VA, B.next());
    (void)C.next();
  }
  Rng A2(42), C2(43);
  bool Differs = false;
  for (int I = 0; I != 10; ++I)
    if (A2.next() != C2.next())
      Differs = true;
  EXPECT_TRUE(Differs);
}

TEST(Random, BelowStaysInBounds) {
  Rng R(7);
  for (int I = 0; I != 10000; ++I)
    EXPECT_LT(R.below(13), 13u);
}

TEST(Random, RangeIsInclusive) {
  Rng R(11);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I != 20000; ++I) {
    int64_t V = R.range(-3, 3);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 3);
    SawLo |= V == -3;
    SawHi |= V == 3;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(Random, ChancePercentExtremes) {
  Rng R(5);
  for (int I = 0; I != 100; ++I) {
    EXPECT_FALSE(R.chancePercent(0));
    EXPECT_TRUE(R.chancePercent(100));
  }
}

TEST(Random, ChancePercentApproximatesProbability) {
  Rng R(9);
  int Hits = 0;
  const int N = 100000;
  for (int I = 0; I != N; ++I)
    if (R.chancePercent(30))
      ++Hits;
  EXPECT_NEAR(static_cast<double>(Hits) / N, 0.30, 0.01);
}

TEST(Stats, MeanAndGeomean) {
  EXPECT_DOUBLE_EQ(mean({2.0, 4.0, 6.0}), 4.0);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Stats, GeomeanDegradesOnNonPositiveValues) {
  // No logarithm exists, so the helper returns the empty-sequence
  // sentinel instead of propagating NaN/-inf into summary rows.
  EXPECT_DOUBLE_EQ(geomean({}), 0.0);
  EXPECT_DOUBLE_EQ(geomean({2.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(geomean({-1.0}), 0.0);
  EXPECT_DOUBLE_EQ(geomean({1.0, 4.0, -2.0}), 0.0);
}

TEST(Stats, PercentAndRatioHandleZeroDenominators) {
  EXPECT_DOUBLE_EQ(percent(1.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(percent(25.0, 100.0), 25.0);
  EXPECT_DOUBLE_EQ(ratio(3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(ratio(3.0, 6.0), 0.5);
}

TEST(Table, FormatsAlignedColumns) {
  Table T("demo");
  T.row({"name", "value"});
  T.row({"alpha", "1.00x"});
  T.row({"b", "10.25x"});
  std::ostringstream OS;
  T.print(OS);
  std::string Out = OS.str();
  EXPECT_NE(Out.find("== demo =="), std::string::npos);
  EXPECT_NE(Out.find("alpha"), std::string::npos);
  // Header underline present.
  EXPECT_NE(Out.find("-----"), std::string::npos);
  // Right-justified numeric column: the shorter value is padded.
  EXPECT_NE(Out.find(" 1.00x"), std::string::npos);
}

TEST(Table, NumberFormatters) {
  EXPECT_EQ(Table::fmt(1.2345, 2), "1.23");
  EXPECT_EQ(Table::fmt(1.0, 0), "1");
  EXPECT_EQ(Table::fmtPercent(12.345, 1), "12.3%");
  EXPECT_EQ(Table::fmtInt(98765), "98765");
}
