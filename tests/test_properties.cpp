//===- tests/test_properties.cpp - Parameterized property tests -------------===//
//
// Part of the StrideProf project test suite: property-style sweeps over
// configuration spaces (LFU buffer geometries, cache associativities,
// sampling parameters, classifier thresholds) checking invariants rather
// than fixed values.
//
//===----------------------------------------------------------------------===//

#include "feedback/Classifier.h"
#include "memsys/Cache.h"
#include "profile/LfuValueProfiler.h"
#include "profile/StrideProfiler.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

using namespace sprof;

//===----------------------------------------------------------------------===//
// LFU profiler properties over buffer geometries.
//===----------------------------------------------------------------------===//

class LfuGeometry
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned,
                                                 unsigned>> {};

// A value occupying >60% of a long stream must surface as top-1 regardless
// of buffer geometry: the paper's classifier depends on LFU never losing a
// strongly dominant stride.
TEST_P(LfuGeometry, DominantValueAlwaysSurvives) {
  auto [TempSize, FinalSize, MergeInterval] = GetParam();
  LfuConfig C;
  C.TempSize = TempSize;
  C.FinalSize = FinalSize;
  C.MergeInterval = MergeInterval;
  C.CoarsenShift = 0;
  LfuValueProfiler L(C);

  Rng R(0x1F0 + TempSize * 131 + FinalSize);
  uint64_t DominantCount = 0;
  for (int I = 0; I != 20000; ++I) {
    if (R.chancePercent(65)) {
      L.add(4096);
      ++DominantCount;
    } else {
      L.add(static_cast<int64_t>(R.below(1000)) * 16 + 8192);
    }
  }
  std::vector<ValueCount> Top = L.topValues();
  ASSERT_FALSE(Top.empty());
  EXPECT_EQ(Top[0].Value, 4096);
  // The reported count never exceeds the true count and, because a
  // dominant value is never the LFU victim once established, it stays
  // close to it.
  EXPECT_LE(Top[0].Count, DominantCount);
  EXPECT_GE(Top[0].Count, DominantCount * 9 / 10);
}

// Reported counts never exceed the number of adds, in any geometry.
TEST_P(LfuGeometry, CountsNeverExceedAdds) {
  auto [TempSize, FinalSize, MergeInterval] = GetParam();
  LfuConfig C;
  C.TempSize = TempSize;
  C.FinalSize = FinalSize;
  C.MergeInterval = MergeInterval;
  LfuValueProfiler L(C);
  Rng R(0x77 + MergeInterval);
  for (int I = 0; I != 5000; ++I)
    L.add(static_cast<int64_t>(R.below(64)) * 256);
  uint64_t Sum = 0;
  for (const ValueCount &VC : L.topValues())
    Sum += VC.Count;
  EXPECT_LE(Sum, L.totalAdded());
  EXPECT_LE(L.topValues().size(), static_cast<size_t>(FinalSize));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, LfuGeometry,
    ::testing::Values(std::make_tuple(2u, 1u, 16u),
                      std::make_tuple(4u, 2u, 64u),
                      std::make_tuple(8u, 4u, 256u),
                      std::make_tuple(16u, 8u, 1024u),
                      std::make_tuple(16u, 8u, 64u),
                      std::make_tuple(32u, 16u, 4096u)));

//===----------------------------------------------------------------------===//
// Cache properties over associativities.
//===----------------------------------------------------------------------===//

class CacheAssoc : public ::testing::TestWithParam<unsigned> {};

// A working set of exactly W lines mapping to one set never misses after
// warmup in a W-way cache, and always misses with W+1 lines (LRU).
TEST_P(CacheAssoc, LruResidency) {
  unsigned Ways = GetParam();
  CacheLevelConfig Cfg{"L", 64ull * 8 * Ways, Ways, 64, 2};
  const uint64_t NumSets = 8;

  {
    CacheLevel L(Cfg);
    uint64_t Ready;
    for (int Round = 0; Round != 4; ++Round)
      for (unsigned W = 0; W != Ways; ++W) {
        uint64_t Line = W * NumSets; // all in set 0
        if (!L.probe(Line, Ready))
          L.fill(Line, 0);
      }
    // After warmup everything hits.
    for (unsigned W = 0; W != Ways; ++W)
      EXPECT_TRUE(L.probe(W * NumSets, Ready));
  }
  {
    CacheLevel L(Cfg);
    uint64_t Ready;
    unsigned Misses = 0;
    for (int Round = 0; Round != 4; ++Round)
      for (unsigned W = 0; W != Ways + 1; ++W) {
        uint64_t Line = W * NumSets;
        if (!L.probe(Line, Ready)) {
          ++Misses;
          L.fill(Line, 0);
        }
      }
    // LRU + sequential sweep of W+1 lines over W ways: every access
    // misses.
    EXPECT_EQ(Misses, 4 * (Ways + 1));
  }
}

INSTANTIATE_TEST_SUITE_P(Ways, CacheAssoc,
                         ::testing::Values(1u, 2u, 4u, 6u, 8u));

// Hierarchy invariant: per-level hits + misses are consistent and stall
// cycles equal the sum of returned latencies.
TEST(CacheProperties, AccountingConsistent) {
  MemoryHierarchy MH{MemoryConfig()};
  Rng R(0xCAFE);
  uint64_t LatencySum = 0;
  const int N = 20000;
  for (int I = 0; I != N; ++I)
    LatencySum += MH.demandAccess(R.below(1 << 22), I * 3);
  const MemoryStats &S = MH.stats();
  EXPECT_EQ(S.DemandAccesses, static_cast<uint64_t>(N));
  EXPECT_EQ(S.StallCycles, LatencySum);
  uint64_t L1Seen = S.Levels[0].Hits + S.Levels[0].Misses;
  EXPECT_EQ(L1Seen, static_cast<uint64_t>(N));
  // Lower levels only see upper-level misses.
  EXPECT_LE(S.Levels[1].Hits + S.Levels[1].Misses, L1Seen);
}

//===----------------------------------------------------------------------===//
// Sampling properties over (chunk, fine) parameters.
//===----------------------------------------------------------------------===//

class SamplingParams
    : public ::testing::TestWithParam<std::tuple<uint64_t, uint64_t,
                                                 uint32_t>> {};

// Closed form: with chunk (skip N1, profile N2) and fine interval F, the
// processed share approaches N2 / (N1 + N2 + 1) / F.
TEST_P(SamplingParams, ProcessedShareMatchesClosedForm) {
  auto [Skip, Profile, Fine] = GetParam();
  StrideProfilerConfig C;
  C.Sampling.Enabled = true;
  C.Sampling.ChunkSkip = Skip;
  C.Sampling.ChunkProfile = Profile;
  C.Sampling.FineInterval = Fine;
  StrideProfiler P(1, C);

  const uint64_t N = 200000;
  uint64_t Addr = 0;
  for (uint64_t I = 0; I != N; ++I) {
    P.profile(0, Addr);
    Addr += 64;
  }
  double Expected = static_cast<double>(Profile) /
                    static_cast<double>(Skip + Profile + 1) /
                    static_cast<double>(Fine);
  double Actual = static_cast<double>(P.totalProcessed()) /
                  static_cast<double>(N);
  EXPECT_NEAR(Actual, Expected, Expected * 0.1 + 0.001);
  // Strides recovered by fromProfiler are the true ones regardless of F.
  StrideProfile SP = StrideProfile::fromProfiler(P);
  ASSERT_FALSE(SP.site(0).TopStrides.empty());
  EXPECT_EQ(SP.site(0).TopStrides[0].Value, 64);
}

INSTANTIATE_TEST_SUITE_P(
    Params, SamplingParams,
    ::testing::Values(std::make_tuple(600ull, 150ull, 4u),
                      std::make_tuple(2000ull, 500ull, 4u),
                      std::make_tuple(1000ull, 1000ull, 2u),
                      std::make_tuple(100ull, 900ull, 1u),
                      std::make_tuple(8000ull, 2000ull, 8u)));

//===----------------------------------------------------------------------===//
// Classifier threshold properties.
//===----------------------------------------------------------------------===//

namespace {

StrideSiteSummary summaryWithShares(double Top1, double Top4Extra,
                                    double ZeroDiff) {
  StrideSiteSummary S;
  S.TotalStrides = 10000;
  S.NumZeroDiff = static_cast<uint64_t>(ZeroDiff * 10000);
  S.TopStrides = {{128, static_cast<uint64_t>(Top1 * 10000)},
                  {64, static_cast<uint64_t>(Top4Extra * 10000 / 3)},
                  {32, static_cast<uint64_t>(Top4Extra * 10000 / 3)},
                  {256, static_cast<uint64_t>(Top4Extra * 10000 / 3)}};
  return S;
}

unsigned classRank(StrideClass C) {
  switch (C) {
  case StrideClass::SSST:
    return 3;
  case StrideClass::PMST:
    return 2;
  case StrideClass::WSST:
    return 1;
  case StrideClass::None:
    return 0;
  }
  return 0;
}

} // namespace

class ThresholdSweep : public ::testing::TestWithParam<double> {};

// Raising the SSST threshold can only demote classifications, never
// promote them.
TEST_P(ThresholdSweep, SsstThresholdMonotone) {
  double Top1 = GetParam();
  StrideSiteSummary S = summaryWithShares(Top1, 0.15, 0.5);
  ClassifierConfig Lo, Hi;
  Lo.SsstThreshold = 0.5;
  Hi.SsstThreshold = 0.9;
  StrideClass CLo = classifyStrideSummary(S, Lo);
  StrideClass CHi = classifyStrideSummary(S, Hi);
  // With a lower threshold the class is at least as strong.
  EXPECT_GE(classRank(CLo), classRank(CHi));
}

// The zero-diff share separates PMST from nothing at fixed value shares.
TEST_P(ThresholdSweep, ZeroDiffGatesPmst) {
  double Top1 = GetParam();
  if (Top1 > 0.55)
    GTEST_SKIP() << "value share would classify SSST first";
  StrideSiteSummary Phased = summaryWithShares(Top1, 0.45, 0.6);
  StrideSiteSummary Alternated = summaryWithShares(Top1, 0.45, 0.02);
  ClassifierConfig C;
  C.SsstThreshold = 0.99; // isolate the PMST test
  C.WsstThreshold = 0.99;
  EXPECT_EQ(classifyStrideSummary(Phased, C), StrideClass::PMST);
  EXPECT_EQ(classifyStrideSummary(Alternated, C), StrideClass::None);
}

INSTANTIATE_TEST_SUITE_P(Top1Shares, ThresholdSweep,
                         ::testing::Values(0.2, 0.35, 0.5, 0.65, 0.8,
                                           0.95));

//===----------------------------------------------------------------------===//
// Serialization round-trip over randomized profiles.
//===----------------------------------------------------------------------===//

class RoundTripSeed : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RoundTripSeed, RandomProfilesSurviveSerialization) {
  Rng R(GetParam());
  const uint32_t NumSites = 40;
  const size_t NumFuncs = 5;

  StrideProfile SP(NumSites);
  for (uint32_t S = 0; S != NumSites; ++S) {
    if (R.chancePercent(30))
      continue; // unprofiled site
    StrideSiteSummary &Sum = SP.site(S);
    Sum.TotalStrides = 1 + R.below(100000);
    Sum.NumZeroStride = R.below(Sum.TotalStrides + 1);
    Sum.NumZeroDiff = R.below(Sum.TotalStrides + 1);
    Sum.RefGapSum = R.below(1000000);
    Sum.RefGapCount = R.below(1000);
    unsigned N = 1 + static_cast<unsigned>(R.below(8));
    for (unsigned K = 0; K != N; ++K)
      Sum.TopStrides.push_back(
          ValueCount{R.range(-4096, 4096), 1 + R.below(50000)});
  }
  EdgeProfile EP(NumFuncs);
  for (uint32_t F = 0; F != NumFuncs; ++F) {
    EP.setEntryCount(F, R.below(10000));
    for (unsigned E = 0; E != 6; ++E)
      EP.setFrequency(F, Edge{static_cast<uint32_t>(R.below(20)),
                              static_cast<unsigned>(R.below(2))},
                      R.below(1u << 30));
  }

  std::stringstream SS;
  writeProfiles(EP, SP, SS);
  EdgeProfile EP2;
  StrideProfile SP2;
  ASSERT_TRUE(readProfiles(SS, NumFuncs, NumSites, EP2, SP2));

  for (uint32_t F = 0; F != NumFuncs; ++F) {
    EXPECT_EQ(EP2.entryCount(F), EP.entryCount(F));
    for (const auto &[E, Count] : EP.functionEdges(F))
      EXPECT_EQ(EP2.frequency(F, E), Count);
  }
  for (uint32_t S = 0; S != NumSites; ++S) {
    const StrideSiteSummary &A = SP.site(S);
    const StrideSiteSummary &B = SP2.site(S);
    EXPECT_EQ(A.TotalStrides, B.TotalStrides);
    EXPECT_EQ(A.NumZeroStride, B.NumZeroStride);
    EXPECT_EQ(A.NumZeroDiff, B.NumZeroDiff);
    if (A.TotalStrides != 0) {
      EXPECT_EQ(A.RefGapSum, B.RefGapSum);
      EXPECT_EQ(A.RefGapCount, B.RefGapCount);
    }
    ASSERT_EQ(A.TopStrides.size(), B.TopStrides.size());
    for (size_t K = 0; K != A.TopStrides.size(); ++K) {
      EXPECT_EQ(A.TopStrides[K].Value, B.TopStrides[K].Value);
      EXPECT_EQ(A.TopStrides[K].Count, B.TopStrides[K].Count);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripSeed,
                         ::testing::Values(1ull, 2ull, 3ull, 4ull, 5ull,
                                           0xDEADBEEFull));
