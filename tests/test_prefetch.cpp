//===- tests/test_prefetch.cpp - Prefetch insertion tests -------------------===//
//
// Part of the StrideProf project test suite.
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"
#include "ir/Verifier.h"
#include "prefetch/PrefetchInsertion.h"

#include "TestHelpers.h"
#include <gtest/gtest.h>

using namespace sprof;

namespace {

unsigned countOps(const Module &M, Opcode Op) {
  unsigned N = 0;
  for (const Function &F : M.Functions)
    for (const BasicBlock &BB : F.Blocks)
      for (const Instruction &I : BB.Insts)
        if (I.Op == Op)
          ++N;
  return N;
}

PrefetchDecision makeDecision(uint32_t Site, StrideClass Kind,
                              int64_t Stride, unsigned K,
                              bool InLoop = true) {
  PrefetchDecision D;
  D.SiteId = Site;
  D.Kind = Kind;
  D.StrideValue = Stride;
  D.Distance = K;
  D.InLoop = InLoop;
  return D;
}

} // namespace

TEST(PrefetchInsertion, SsstInsertsConstantOffsetPrefetch) {
  uint32_t DataSite, NextSite;
  Module M = test::makeChaseModule(DataSite, NextSite);
  PrefetchInsertionStats S = insertPrefetches(
      M, {makeDecision(NextSite, StrideClass::SSST, 128, 8)});
  EXPECT_TRUE(isWellFormed(M));
  EXPECT_EQ(S.SsstPrefetches, 1u);
  EXPECT_EQ(S.InstructionsAdded, 1u);
  ASSERT_EQ(countOps(M, Opcode::Prefetch), 1u);
  for (const BasicBlock &BB : M.Functions[0].Blocks)
    for (const Instruction &I : BB.Insts)
      if (I.Op == Opcode::Prefetch) {
        EXPECT_EQ(I.Imm, 8 * 128); // load offset 0 + K*S
        EXPECT_EQ(I.Pred, NoReg);
      }
}

TEST(PrefetchInsertion, PmstComputesRuntimeStride) {
  uint32_t DataSite, NextSite;
  Module M = test::makeChaseModule(DataSite, NextSite);
  PrefetchInsertionStats S = insertPrefetches(
      M, {makeDecision(NextSite, StrideClass::PMST, 0, 4)});
  EXPECT_TRUE(isWellFormed(M));
  EXPECT_EQ(S.PmstPrefetches, 1u);
  // add(ea), sub(stride), mov(save), shl, add(pf addr), prefetch.
  EXPECT_EQ(S.InstructionsAdded, 6u);
  EXPECT_EQ(countOps(M, Opcode::Prefetch), 1u);
  EXPECT_EQ(countOps(M, Opcode::Shl), 1u);
}

TEST(PrefetchInsertion, WsstGuardsWithPredicate) {
  uint32_t DataSite, NextSite;
  Module M = test::makeChaseModule(DataSite, NextSite);
  PrefetchInsertionStats S = insertPrefetches(
      M, {makeDecision(NextSite, StrideClass::WSST, 64, 2)});
  EXPECT_TRUE(isWellFormed(M));
  EXPECT_EQ(S.WsstPrefetches, 1u);
  bool FoundGuarded = false;
  for (const BasicBlock &BB : M.Functions[0].Blocks)
    for (const Instruction &I : BB.Insts)
      if (I.Op == Opcode::Prefetch) {
        EXPECT_NE(I.Pred, NoReg);
        EXPECT_EQ(I.Imm, 2 * 64);
        FoundGuarded = true;
      }
  EXPECT_TRUE(FoundGuarded);
}

TEST(PrefetchInsertion, MultipleDecisionsSameBlock) {
  uint32_t DataSite, NextSite;
  Module M = test::makeChaseModule(DataSite, NextSite);
  PrefetchInsertionStats S = insertPrefetches(
      M, {makeDecision(NextSite, StrideClass::SSST, 128, 8),
          makeDecision(DataSite, StrideClass::SSST, 128, 8)});
  EXPECT_TRUE(isWellFormed(M));
  EXPECT_EQ(S.SsstPrefetches, 2u);
  EXPECT_EQ(countOps(M, Opcode::Prefetch), 2u);
}

TEST(PrefetchInsertion, SsstPrefetchSpeedsUpStridedChase) {
  // End-to-end: a strided chase with a big working set runs faster with
  // the inserted SSST prefetch.
  uint32_t DataSite, NextSite;
  uint64_t Plain = 0, Fast = 0;
  for (int WithPf = 0; WithPf != 2; ++WithPf) {
    Module M = test::makeChaseModule(DataSite, NextSite);
    if (WithPf)
      insertPrefetches(
          M, {makeDecision(NextSite, StrideClass::SSST, 256, 8)});
    SimMemory Mem;
    test::fillChaseList(Mem, 30000, 256); // 7.5MB: beyond L3
    Interpreter I(M, std::move(Mem));
    MemoryHierarchy MH{MemoryConfig()};
    I.attachMemory(&MH);
    RunStats S = I.run();
    ASSERT_TRUE(S.Completed);
    (WithPf ? Fast : Plain) = S.Cycles;
  }
  // The loop body is tiny, so a distance-8 prefetch is late but still
  // overlaps a large part of each miss.
  EXPECT_LT(Fast, Plain * 9 / 10);
}

TEST(PrefetchInsertion, PmstPrefetchSpeedsUpPhasedChase) {
  uint32_t DataSite, NextSite;
  uint64_t Plain = 0, Fast = 0;
  for (int WithPf = 0; WithPf != 2; ++WithPf) {
    Module M = test::makeChaseModule(DataSite, NextSite);
    if (WithPf)
      insertPrefetches(M,
                       {makeDecision(NextSite, StrideClass::PMST, 0, 8)});
    // Phased strides: 4000 nodes at 192B, then 4000 at 320B.
    SimMemory Mem;
    uint64_t Addr = 0x1000;
    for (int I2 = 0; I2 != 8000; ++I2) {
      uint64_t Stride = I2 < 4000 ? 192 : 320;
      uint64_t Next = I2 != 7999 ? Addr + Stride : 0;
      Mem.write64(Addr, static_cast<int64_t>(Next));
      Mem.write64(Addr + 8, I2);
      Addr += Stride;
    }
    Interpreter I(M, std::move(Mem));
    MemoryHierarchy MH{MemoryConfig()};
    I.attachMemory(&MH);
    RunStats S = I.run();
    ASSERT_TRUE(S.Completed);
    (WithPf ? Fast : Plain) = S.Cycles;
  }
  EXPECT_LT(Fast, Plain * 9 / 10);
}

TEST(PrefetchInsertion, NoDecisionsNoChanges) {
  uint32_t DataSite, NextSite;
  Module M = test::makeChaseModule(DataSite, NextSite);
  Module Copy = M;
  PrefetchInsertionStats S =
      insertPrefetches(M, std::vector<PrefetchDecision>());
  EXPECT_EQ(S.InstructionsAdded, 0u);
  EXPECT_EQ(countOps(M, Opcode::Prefetch), countOps(Copy, Opcode::Prefetch));
}
