//===- tests/test_feedback.cpp - Figure-5 classifier tests ------------------===//
//
// Part of the StrideProf project test suite.
//
//===----------------------------------------------------------------------===//

#include "feedback/Classifier.h"
#include "ir/IRBuilder.h"

#include "TestHelpers.h"
#include <gtest/gtest.h>

using namespace sprof;

namespace {

StrideSiteSummary makeSummary(uint64_t Total, uint64_t ZeroDiff,
                              std::vector<ValueCount> Top) {
  StrideSiteSummary S;
  S.SiteId = 0;
  S.TotalStrides = Total;
  S.NumZeroDiff = ZeroDiff;
  S.TopStrides = std::move(Top);
  return S;
}

} // namespace

TEST(Classifier, SsstDetection) {
  // 80% dominant stride -> SSST (threshold 70%).
  StrideSiteSummary S = makeSummary(1000, 100, {{128, 800}, {64, 50}});
  EXPECT_EQ(classifyStrideSummary(S, {}), StrideClass::SSST);
}

TEST(Classifier, SsstThresholdIsStrict) {
  // Exactly 70% is not ">" the threshold.
  StrideSiteSummary S = makeSummary(1000, 0, {{128, 700}});
  ClassifierConfig C;
  C.WsstDiffThreshold = 0.10;
  EXPECT_NE(classifyStrideSummary(S, C), StrideClass::SSST);
}

TEST(Classifier, PmstDetection) {
  // The paper's example: strides 32/60/1024 together >60% of the time and
  // 40%+ zero differences.
  StrideSiteSummary S = makeSummary(
      1000, 450, {{32, 280}, {60, 250}, {1024, 150}, {8, 60}});
  EXPECT_EQ(classifyStrideSummary(S, {}), StrideClass::PMST);
}

TEST(Classifier, AlternatedStridesAreNotPmst) {
  // Same value profile but no zero differences (Figure 4c).
  StrideSiteSummary S = makeSummary(
      1000, 10, {{32, 280}, {60, 250}, {1024, 150}, {8, 60}});
  EXPECT_NE(classifyStrideSummary(S, {}), StrideClass::PMST);
}

TEST(Classifier, WsstDetection) {
  // The paper's example: stride 32 in ~25-30% of strides, >=10% zero
  // diffs.
  StrideSiteSummary S = makeSummary(1000, 150, {{32, 300}, {64, 100}});
  EXPECT_EQ(classifyStrideSummary(S, {}), StrideClass::WSST);
}

TEST(Classifier, NoStridePattern) {
  StrideSiteSummary S = makeSummary(1000, 20, {{32, 90}, {64, 80}});
  EXPECT_EQ(classifyStrideSummary(S, {}), StrideClass::None);
  StrideSiteSummary Empty;
  EXPECT_EQ(classifyStrideSummary(Empty, {}), StrideClass::None);
}

TEST(Classifier, Figure10TripCount) {
  // freq(b2->b2)=980, freq(b2->b3)=20, freq(b1->b2)=20 => TC = 50.
  uint32_t D, N;
  Module M = test::makeChaseModule(D, N);
  const Function &F = M.Functions[0];
  EdgeProfile EP(1);
  // head(1): slot0 -> body, slot1 -> exit; entry(0) slot0 -> head.
  EP.setFrequency(0, Edge{1, 0}, 980);
  EP.setFrequency(0, Edge{1, 1}, 20);
  EP.setFrequency(0, Edge{0, 0}, 20);
  double TC = loopTripCount(F, 0, {Edge{0, 0}}, {Edge{1, 0}, Edge{1, 1}},
                            EP);
  EXPECT_DOUBLE_EQ(TC, 50.0);
}

TEST(Feedback, EndToEndSsstPlan) {
  uint32_t DataSite = 0, NextSite = 0;
  Module M = test::makeChaseModule(DataSite, NextSite);

  EdgeProfile EP(1);
  EP.setFrequency(0, Edge{0, 0}, 1);      // entry -> head
  EP.setFrequency(0, Edge{1, 0}, 100000); // head -> body
  EP.setFrequency(0, Edge{1, 1}, 1);      // head -> exit
  EP.setFrequency(0, Edge{2, 0}, 100000); // body -> head

  StrideProfile SP(M.NumLoadSites);
  // Profile for the representative (the +0 next load is at offset 0 and
  // is the representative of the set {next@0, data@8}).
  StrideSiteSummary &S = SP.site(NextSite);
  S.TotalStrides = 100000;
  S.NumZeroDiff = 90000;
  S.TopStrides = {{128, 95000}};

  FeedbackResult R = runFeedback(M, EP, SP);
  ASSERT_EQ(R.Decisions.size(), 1u); // both loads on one cache line
  EXPECT_EQ(R.Decisions[0].Kind, StrideClass::SSST);
  EXPECT_EQ(R.Decisions[0].StrideValue, 128);
  // trip = 100001/1 -> K capped at C=8.
  EXPECT_EQ(R.Decisions[0].Distance, 8u);
  EXPECT_TRUE(R.SiteInLoop[NextSite]);
  EXPECT_GT(R.SiteTripCount[NextSite], 128.0);
}

TEST(Feedback, FrequencyFilterRemovesColdLoads) {
  uint32_t DataSite, NextSite;
  Module M = test::makeChaseModule(DataSite, NextSite);
  EdgeProfile EP(1);
  EP.setFrequency(0, Edge{0, 0}, 1);
  EP.setFrequency(0, Edge{1, 0}, 1500); // below FT=2000
  EP.setFrequency(0, Edge{1, 1}, 1);
  EP.setFrequency(0, Edge{2, 0}, 1500);
  StrideProfile SP(M.NumLoadSites);
  StrideSiteSummary &S = SP.site(NextSite);
  S.TotalStrides = 1500;
  S.TopStrides = {{128, 1400}};
  FeedbackResult R = runFeedback(M, EP, SP);
  EXPECT_TRUE(R.Decisions.empty());
}

TEST(Feedback, TripCountFilterRemovesShortLoops) {
  uint32_t DataSite, NextSite;
  Module M = test::makeChaseModule(DataSite, NextSite);
  EdgeProfile EP(1);
  // 100000 executions but trip count 100000/1000 = 100 <= 128.
  EP.setFrequency(0, Edge{0, 0}, 1000);
  EP.setFrequency(0, Edge{1, 0}, 100000);
  EP.setFrequency(0, Edge{1, 1}, 1000);
  EP.setFrequency(0, Edge{2, 0}, 100000);
  StrideProfile SP(M.NumLoadSites);
  StrideSiteSummary &S = SP.site(NextSite);
  S.TotalStrides = 100000;
  S.TopStrides = {{128, 95000}};
  FeedbackResult R = runFeedback(M, EP, SP);
  EXPECT_TRUE(R.Decisions.empty());
}

TEST(Feedback, DistanceScalesWithTripCount) {
  uint32_t DataSite, NextSite;
  Module M = test::makeChaseModule(DataSite, NextSite);
  EdgeProfile EP(1);
  // trip ~ 400 -> K = min(400/128, 8) = 3.
  EP.setFrequency(0, Edge{0, 0}, 250);
  EP.setFrequency(0, Edge{1, 0}, 100000);
  EP.setFrequency(0, Edge{1, 1}, 250);
  EP.setFrequency(0, Edge{2, 0}, 100000);
  StrideProfile SP(M.NumLoadSites);
  StrideSiteSummary &S = SP.site(NextSite);
  S.TotalStrides = 100000;
  S.NumZeroDiff = 60000;
  S.TopStrides = {{128, 95000}};
  FeedbackResult R = runFeedback(M, EP, SP);
  ASSERT_EQ(R.Decisions.size(), 1u);
  EXPECT_EQ(R.Decisions[0].Distance, 3u);
}

TEST(Feedback, PmstDistanceIsPowerOfTwo) {
  uint32_t DataSite, NextSite;
  Module M = test::makeChaseModule(DataSite, NextSite);
  EdgeProfile EP(1);
  EP.setFrequency(0, Edge{0, 0}, 140);
  EP.setFrequency(0, Edge{1, 0}, 100000); // trip ~ 714 -> K=5 -> pow2 4
  EP.setFrequency(0, Edge{1, 1}, 140);
  EP.setFrequency(0, Edge{2, 0}, 100000);
  StrideProfile SP(M.NumLoadSites);
  StrideSiteSummary &S = SP.site(NextSite);
  S.TotalStrides = 100000;
  S.NumZeroDiff = 50000;
  S.TopStrides = {{128, 30000}, {64, 20000}, {32, 9000}, {256, 4000}};
  FeedbackResult R = runFeedback(M, EP, SP);
  ASSERT_EQ(R.Decisions.size(), 1u);
  EXPECT_EQ(R.Decisions[0].Kind, StrideClass::PMST);
  EXPECT_EQ(R.Decisions[0].Distance, 4u);
}

TEST(Feedback, WsstDisabledByDefaultEnabledByConfig) {
  uint32_t DataSite, NextSite;
  Module M = test::makeChaseModule(DataSite, NextSite);
  EdgeProfile EP(1);
  EP.setFrequency(0, Edge{0, 0}, 10);
  EP.setFrequency(0, Edge{1, 0}, 100000);
  EP.setFrequency(0, Edge{1, 1}, 10);
  EP.setFrequency(0, Edge{2, 0}, 100000);
  StrideProfile SP(M.NumLoadSites);
  StrideSiteSummary &S = SP.site(NextSite);
  S.TotalStrides = 100000;
  S.NumZeroDiff = 15000;
  S.TopStrides = {{128, 30000}};
  FeedbackResult R = runFeedback(M, EP, SP);
  EXPECT_TRUE(R.Decisions.empty()); // WSST prefetching off (paper default)
  EXPECT_EQ(R.SiteClass[NextSite], StrideClass::WSST);

  ClassifierConfig C;
  C.EnableWsstPrefetch = true;
  FeedbackResult R2 = runFeedback(M, EP, SP, C);
  ASSERT_EQ(R2.Decisions.size(), 1u);
  EXPECT_EQ(R2.Decisions[0].Kind, StrideClass::WSST);
}

TEST(Feedback, OutLoopOnlySsstGetsFixedDistance) {
  // Straight-line function with an out-loop load.
  Module M;
  IRBuilder B(M);
  B.startFunction("main", 0);
  Reg P = B.movImm(0x1000);
  B.load(P, 0);
  uint32_t Site = B.lastSiteId();
  B.halt();

  EdgeProfile EP(1); // no edges at all: block frequency falls back to 0...
  // Single-block function: frequency comes from incoming edges; there are
  // none, so feed the classifier a load frequency through a synthetic
  // self-check: out-loop loads pass the FT filter only if blockFrequency
  // works; here we accept the filter behaviour: build a two-block version
  // instead.
  (void)EP;
  (void)Site;

  Module M2;
  IRBuilder B2(M2);
  B2.startFunction("main", 0);
  Function &F2 = B2.function();
  uint32_t Next = F2.newBlock("next");
  Reg P2 = B2.movImm(0x1000);
  B2.jmp(Next);
  B2.setBlock(Next);
  B2.load(P2, 0);
  uint32_t Site2 = B2.lastSiteId();
  B2.halt();

  EdgeProfile EP2(1);
  EP2.setFrequency(0, Edge{0, 0}, 50000);
  StrideProfile SP(M2.NumLoadSites);
  StrideSiteSummary &S = SP.site(Site2);
  S.TotalStrides = 50000;
  S.TopStrides = {{64, 45000}};
  FeedbackResult R = runFeedback(M2, EP2, SP);
  ASSERT_EQ(R.Decisions.size(), 1u);
  EXPECT_FALSE(R.Decisions[0].InLoop);
  EXPECT_EQ(R.Decisions[0].Distance, ClassifierConfig().OutLoopPrefetchDistance);

  // PMST-grade profiles on out-loop loads are not prefetched (2.3).
  S.TopStrides = {{64, 20000}, {32, 15000}, {16, 9000}, {8, 7000}};
  S.NumZeroDiff = 25000;
  FeedbackResult R2 = runFeedback(M2, EP2, SP);
  EXPECT_TRUE(R2.Decisions.empty());
}
