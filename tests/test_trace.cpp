//===- tests/test_trace.cpp - Trace-tier differential tests ----------------===//
//
// Part of the StrideProf project test suite.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Trace execution engine's contract is the Decoded engine's contract:
/// bit-identical observable behaviour to the Reference engine -- same
/// RunStats (every field), same per-site counts, same serialized profiles,
/// same attribution, same telemetry tallies -- for every workload and
/// profiling method, while hot loop iterations actually execute through
/// compiled superblocks. These tests enforce the contract differentially
/// at the tier's structural seams: fuel truncation landing mid-trace,
/// guard side-exits at every guard position, hot-path flips that force
/// invalidation and recompilation, and trace adoption through the shared
/// program cache.
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "interp/Interpreter.h"
#include "interp/ProgramCache.h"
#include "interp/TraceSelector.h"
#include "ir/IRBuilder.h"
#include "obs/Obs.h"
#include "obs/SelfProfiler.h"
#include "profile/ProfileStore.h"
#include "workloads/Workload.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

using namespace sprof;
using namespace sprof::test;

namespace {

/// Low selection thresholds so even short test loops earn a trace.
TraceTierConfig eagerTrace() {
  TraceTierConfig T;
  T.HotThreshold = 4;
  T.PathThreshold = 3;
  return T;
}

InterpreterConfig interpConfig(InterpreterConfig::Engine E) {
  InterpreterConfig C;
  C.Exec = E;
  if (E == InterpreterConfig::Engine::Trace)
    C.Trace = eagerTrace();
  return C;
}

PipelineConfig engineConfig(InterpreterConfig::Engine E) {
  PipelineConfig C;
  C.Interp = interpConfig(E);
  return C;
}

/// Every RunStats field, so a divergence names the broken bucket instead
/// of failing on an opaque aggregate.
void expectSameStats(const RunStats &Ref, const RunStats &Trc) {
  EXPECT_EQ(Ref.Completed, Trc.Completed);
  EXPECT_EQ(Ref.Instructions, Trc.Instructions);
  EXPECT_EQ(Ref.Cycles, Trc.Cycles);
  EXPECT_EQ(Ref.BaseCycles, Trc.BaseCycles);
  EXPECT_EQ(Ref.MemStallCycles, Trc.MemStallCycles);
  EXPECT_EQ(Ref.InstrumentationCycles, Trc.InstrumentationCycles);
  EXPECT_EQ(Ref.RuntimeCycles, Trc.RuntimeCycles);
  EXPECT_EQ(Ref.LoadRefs, Trc.LoadRefs);
  EXPECT_EQ(Ref.SiteCounts, Trc.SiteCounts);
  EXPECT_EQ(Ref.ExitValue, Trc.ExitValue);
  ASSERT_EQ(Ref.Mem.Levels.size(), Trc.Mem.Levels.size());
  for (size_t L = 0; L != Ref.Mem.Levels.size(); ++L) {
    EXPECT_EQ(Ref.Mem.Levels[L].Hits, Trc.Mem.Levels[L].Hits);
    EXPECT_EQ(Ref.Mem.Levels[L].Misses, Trc.Mem.Levels[L].Misses);
  }
  EXPECT_EQ(Ref.Mem.DemandAccesses, Trc.Mem.DemandAccesses);
  EXPECT_EQ(Ref.Mem.PrefetchesIssued, Trc.Mem.PrefetchesIssued);
}

std::string profileText(const Workload &W, ProfilingMethod Method,
                        const ProfileRunResult &R) {
  ProfileStore Store(
      {W.info().Name, profilingMethodName(Method), dataSetName(DataSet::Train)},
      R.Edges, R.Strides);
  return Store.toString();
}

// Every profiling method, with and without the simulated cache hierarchy,
// on the workload with the most call/indirection structure. The trace
// tier must reproduce the Reference profiles and cycle accounting bit for
// bit while demonstrably executing trace iterations.
TEST(TraceEngine, ProfilesMatchReferenceAcrossMethodsAndMemsys) {
  std::unique_ptr<Workload> W = makeWorkloadByName("181.mcf");
  ASSERT_NE(W, nullptr);
  for (bool WithMem : {false, true}) {
    for (ProfilingMethod Method : allProfilingMethods()) {
      SCOPED_TRACE(std::string(profilingMethodName(Method)) +
                   (WithMem ? "/memsys" : "/flat"));
      Pipeline Ref(*W, engineConfig(InterpreterConfig::Engine::Reference));
      Pipeline Trc(*W, engineConfig(InterpreterConfig::Engine::Trace));
      ProfileRunResult RR = Ref.runProfile(Method, DataSet::Train, WithMem);
      ProfileRunResult RT = Trc.runProfile(Method, DataSet::Train, WithMem);
      expectSameStats(RR.Stats, RT.Stats);
      EXPECT_EQ(profileText(*W, Method, RR), profileText(*W, Method, RT));
      EXPECT_EQ(RR.StrideInvocations, RT.StrideInvocations);
      EXPECT_EQ(RR.StrideProcessed, RT.StrideProcessed);
      EXPECT_EQ(RR.LfuCalls, RT.LfuCalls);
      EXPECT_FALSE(RR.TraceTier.Enabled);
      ASSERT_TRUE(RT.TraceTier.Enabled);
      EXPECT_GT(RT.TraceTier.Iterations, 0u) << "tier never executed";
    }
  }
}

// Trace vs Decoded on the whole suite (transitively pins Trace to
// Reference through test_decoded.cpp) -- cheaper than Reference, so the
// full suite stays fast while every workload shape crosses the tier.
TEST(TraceEngine, SuiteMatchesDecodedEngine) {
  for (const std::unique_ptr<Workload> &W : makeSpecIntSuite()) {
    SCOPED_TRACE(W->info().Name);
    Pipeline Dec(*W, engineConfig(InterpreterConfig::Engine::Decoded));
    Pipeline Trc(*W, engineConfig(InterpreterConfig::Engine::Trace));
    ProfileRunResult RD =
        Dec.runProfile(ProfilingMethod::EdgeCheck, DataSet::Train, false);
    ProfileRunResult RT =
        Trc.runProfile(ProfilingMethod::EdgeCheck, DataSet::Train, false);
    expectSameStats(RD.Stats, RT.Stats);
    EXPECT_EQ(profileText(*W, ProfilingMethod::EdgeCheck, RD),
              profileText(*W, ProfilingMethod::EdgeCheck, RT));
  }
}

// The feedback half: classifier output, prefetched-run timing, and the
// full prefetch-outcome attribution through the trace tier.
TEST(TraceEngine, PrefetchedRunAndAttributionMatchReference) {
  std::unique_ptr<Workload> W = makeWorkloadByName("181.mcf");
  ASSERT_NE(W, nullptr);
  PipelineConfig RC = engineConfig(InterpreterConfig::Engine::Reference);
  PipelineConfig TC = engineConfig(InterpreterConfig::Engine::Trace);
  RC.Memory.EnableAttribution = true;
  TC.Memory.EnableAttribution = true;
  Pipeline Ref(*W, RC);
  Pipeline Trc(*W, TC);
  ProfileRunResult PR =
      Ref.runProfile(ProfilingMethod::EdgeCheck, DataSet::Train, false);
  ProfileRunResult PT =
      Trc.runProfile(ProfilingMethod::EdgeCheck, DataSet::Train, false);
  TimedRunResult TR = Ref.runPrefetched(DataSet::Train, PR.Edges, PR.Strides);
  TimedRunResult TT = Trc.runPrefetched(DataSet::Train, PT.Edges, PT.Strides);
  expectSameStats(TR.Stats, TT.Stats);
  EXPECT_EQ(TR.Feedback.SiteClass, TT.Feedback.SiteClass);
  EXPECT_EQ(TR.Prefetches.InstructionsAdded, TT.Prefetches.InstructionsAdded);
  ASSERT_TRUE(TT.Attribution.Finalized);
  EXPECT_EQ(TR.Attribution.Total.Useful, TT.Attribution.Total.Useful);
  EXPECT_EQ(TR.Attribution.Total.Late, TT.Attribution.Total.Late);
  EXPECT_EQ(TR.Attribution.Total.Early, TT.Attribution.Total.Early);
  EXPECT_EQ(TR.Attribution.Total.Redundant, TT.Attribution.Total.Redundant);
  ASSERT_EQ(TR.Attribution.PerSite.size(), TT.Attribution.PerSite.size());
  for (size_t S = 0; S != TR.Attribution.PerSite.size(); ++S) {
    EXPECT_EQ(TR.Attribution.PerSite[S].Useful, TT.Attribution.PerSite[S].Useful);
    EXPECT_EQ(TR.Attribution.PerSite[S].Late, TT.Attribution.PerSite[S].Late);
  }
  EXPECT_TRUE(TT.TraceTier.Enabled);
}

// The engines must agree for EVERY MaxInstructions value: the budget can
// expire in the middle of a trace iteration, where the trace executor must
// hand back to the Decoded engine at the loop head with the committed
// prefix accounted exactly (it commits whole iterations, so the decoded
// core replays the partial one per-instruction).
TEST(TraceEngine, TruncationMatchesAtEveryBoundary) {
  uint32_t DataSite = 0, NextSite = 0;
  Module Chase = makeChaseModule(DataSite, NextSite);
  SimMemory ChaseMem;
  fillChaseList(ChaseMem, 32, 64);
  for (uint64_t Limit = 0; Limit <= 260; ++Limit) {
    Interpreter Ref(Chase, ChaseMem, TimingModel(),
                    interpConfig(InterpreterConfig::Engine::Reference));
    Interpreter Trc(Chase, ChaseMem, TimingModel(),
                    interpConfig(InterpreterConfig::Engine::Trace));
    RunStats RR = Ref.run(Limit);
    RunStats RT = Trc.run(Limit);
    SCOPED_TRACE("limit=" + std::to_string(Limit));
    expectSameStats(RR, RT);
  }
  // The tier engages within the sweep (32 iterations, eager thresholds).
  Interpreter Full(Chase, ChaseMem, TimingModel(),
                   interpConfig(InterpreterConfig::Engine::Trace));
  Full.run();
  EXPECT_GT(Full.traceTier().Iterations, 0u);
}

/// A counted loop whose body holds \p Flips.size() conditionals, each
/// taken the same way every iteration except at its single flip iteration
/// -- so an installed trace side-exits exactly once per guard position.
/// Returns `main` iterating [0, Trips).
Module makeGuardFlipModule(int64_t Trips, const std::vector<int64_t> &Flips) {
  Module M;
  M.Name = "guardflip";
  IRBuilder B(M);
  B.startFunction("main", 0);
  Function &F = B.function();
  uint32_t Head = F.newBlock("head");
  std::vector<uint32_t> Then(Flips.size()), Else(Flips.size()),
      Join(Flips.size());
  for (size_t G = 0; G != Flips.size(); ++G) {
    Then[G] = F.newBlock("then" + std::to_string(G));
    Else[G] = F.newBlock("else" + std::to_string(G));
    Join[G] = F.newBlock("join" + std::to_string(G));
  }
  uint32_t Latch = F.newBlock("latch");
  uint32_t Exit = F.newBlock("exit");

  Reg I = B.movImm(0);
  Reg X = B.movImm(0);
  B.jmp(Head);

  B.setBlock(Head);
  Reg C = B.cmp(Opcode::CmpLt, Operand::reg(I), Operand::imm(Trips));
  B.br(Operand::reg(C), Flips.empty() ? Latch : Then[0], Exit);

  for (size_t G = 0; G != Flips.size(); ++G) {
    B.setBlock(Then[G]);
    Reg CG = B.cmp(Opcode::CmpNe, Operand::reg(I), Operand::imm(Flips[G]));
    B.br(Operand::reg(CG), Join[G], Else[G]);
    B.setBlock(Else[G]);
    B.add(Operand::reg(X), Operand::imm(100), X);
    B.jmp(Join[G]);
    B.setBlock(Join[G]);
    B.add(Operand::reg(X), Operand::imm(1), X);
    B.jmp(G + 1 == Flips.size() ? Latch : Then[G + 1]);
  }

  B.setBlock(Latch);
  B.add(Operand::reg(I), Operand::imm(1), I);
  B.jmp(Head);

  B.setBlock(Exit);
  B.ret(Operand::reg(X));
  return M;
}

// Side exits at every guard position: each conditional deviates exactly
// once, at a distinct iteration, so every non-loop guard of the installed
// trace records exactly one exit -- and the run stays bit-identical.
TEST(TraceEngine, SideExitAtEveryGuardPosition) {
  const std::vector<int64_t> Flips = {400, 700, 1000, 1300};
  Module M = makeGuardFlipModule(2000, Flips);
  SimMemory Mem;
  Interpreter Ref(M, Mem, TimingModel(),
                  interpConfig(InterpreterConfig::Engine::Reference));
  Interpreter Trc(M, Mem, TimingModel(),
                  interpConfig(InterpreterConfig::Engine::Trace));
  RunStats RR = Ref.run();
  RunStats RT = Trc.run();
  expectSameStats(RR, RT);

  TraceTierStats TS = Trc.traceTier();
  ASSERT_TRUE(TS.Enabled);
  EXPECT_EQ(TS.Invalidations, 0u) << "single-iteration flips must not "
                                     "invalidate under the windowed ratio";
  // One side exit per flip, plus the final head-guard failure at i==Trips.
  EXPECT_EQ(TS.SideExits + TS.LoopExits, Flips.size() + 1);
  ASSERT_EQ(TS.Traces.size(), 1u);
  const TraceTierStats::PerTrace &T = TS.Traces[0];
  // Every guard position fired: each flip guard exactly once, the loop
  // bound guard once at loop exit.
  uint64_t Fired = 0;
  for (uint64_t E : T.GuardExits) {
    EXPECT_LE(E, 1u);
    Fired += E;
  }
  EXPECT_EQ(Fired, Flips.size() + 1);
  EXPECT_GT(T.Iterations, 1900u);
}

/// A counted loop whose body conditional holds one value for the first
/// \p FlipAt iterations and the other for the remaining \p Trips - FlipAt:
/// `for i in [0, Trips): x += (i < FlipAt) ? 1 : 100`.
Module makePhaseFlipModule(int64_t Trips, int64_t FlipAt) {
  Module M;
  M.Name = "phaseflip";
  IRBuilder B(M);
  B.startFunction("main", 0);
  Function &F = B.function();
  uint32_t Head = F.newBlock("head");
  uint32_t Lo = F.newBlock("lo");
  uint32_t Hi = F.newBlock("hi");
  uint32_t Latch = F.newBlock("latch");
  uint32_t Exit = F.newBlock("exit");
  Reg I = B.movImm(0);
  Reg X = B.movImm(0);
  B.jmp(Head);
  B.setBlock(Head);
  Reg C = B.cmp(Opcode::CmpLt, Operand::reg(I), Operand::imm(Trips));
  B.br(Operand::reg(C), Lo, Exit);
  B.setBlock(Lo);
  Reg P = B.cmp(Opcode::CmpLt, Operand::reg(I), Operand::imm(FlipAt));
  B.br(Operand::reg(P), Latch, Hi);
  B.setBlock(Hi);
  B.add(Operand::reg(X), Operand::imm(99), X);
  B.jmp(Latch);
  B.setBlock(Latch);
  B.add(Operand::reg(X), Operand::imm(1), X);
  B.add(Operand::reg(I), Operand::imm(1), I);
  B.jmp(Head);
  B.setBlock(Exit);
  B.ret(Operand::reg(X));
  return M;
}

// A hot path that flips for good mid-run: the installed trace starts
// side-exiting on every entry, the windowed entries-vs-iterations ratio
// invalidates it, and the selector re-earns and compiles the new path.
// Accounting must stay bit-identical through install, decay,
// invalidation, and reinstall.
TEST(TraceEngine, InvalidationAndRecompileOnHotPathFlip) {
  Module M = makePhaseFlipModule(8000, 1000);
  SimMemory Mem;
  Interpreter Ref(M, Mem, TimingModel(),
                  interpConfig(InterpreterConfig::Engine::Reference));
  Interpreter Trc(M, Mem, TimingModel(),
                  interpConfig(InterpreterConfig::Engine::Trace));
  RunStats RR = Ref.run();
  RunStats RT = Trc.run();
  expectSameStats(RR, RT);

  TraceTierStats TS = Trc.traceTier();
  ASSERT_TRUE(TS.Enabled);
  EXPECT_GE(TS.Invalidations, 1u);
  EXPECT_GE(TS.TracesCompiled, 2u) << "new hot path never recompiled";
  EXPECT_GT(TS.Iterations, 6000u) << "second phase never ran on-trace";
}

// Trace sharing through the program cache: a second interpreter over a
// structurally identical module adopts the first one's compiled traces
// from the shared bank instead of recompiling (same results either way).
TEST(TraceEngine, ProgramCacheSharesCompiledTraces) {
  // Earlier tests ran the same chase-module content under the trace tier;
  // start from an empty process-wide cache so compile/adopt counts are
  // this test's own.
  ProgramCache::global().clear();
  uint32_t DataSite = 0, NextSite = 0;
  Module Chase = makeChaseModule(DataSite, NextSite);
  SimMemory Mem;
  fillChaseList(Mem, 48, 64);

  Interpreter A(Chase, Mem, TimingModel(),
                interpConfig(InterpreterConfig::Engine::Trace));
  RunStats SA = A.run();
  TraceTierStats TA = A.traceTier();
  ASSERT_TRUE(TA.Enabled);
  EXPECT_GE(TA.TracesCompiled, 1u);

  // Same module content, fresh interpreter: the decode is a cache hit and
  // the trace is adopted, not recompiled.
  Module Chase2 = makeChaseModule(DataSite, NextSite);
  Chase2.Name = "chase.renamed"; // names are excluded from the content key
  Interpreter B(Chase2, Mem, TimingModel(),
                interpConfig(InterpreterConfig::Engine::Trace));
  RunStats SB = B.run();
  TraceTierStats TB = B.traceTier();
  EXPECT_EQ(TB.TracesCompiled, 0u);
  EXPECT_GE(TB.TracesAdopted, 1u);
  expectSameStats(SA, SB);

  // A different timing model must not adopt the cached trace (its static
  // cycle sums were baked against the old costs).
  TimingModel Slow;
  Slow.MulCost = 7;
  Slow.DefaultCost = 2;
  Interpreter C(Chase, Mem, Slow,
                interpConfig(InterpreterConfig::Engine::Trace));
  C.run();
  EXPECT_GE(C.traceTier().TracesCompiled, 1u);
  EXPECT_EQ(C.traceTier().TracesAdopted, 0u);
}

// The content key: names are ignored, every operand byte matters.
TEST(TraceEngine, ProgramCacheKeyIsContentNotName) {
  uint32_t DataSite = 0, NextSite = 0;
  Module A = makeChaseModule(DataSite, NextSite);
  Module B = makeChaseModule(DataSite, NextSite);
  B.Name = "other";
  B.Functions[0].Name = "renamed";
  EXPECT_EQ(ProgramCache::hashModule(A), ProgramCache::hashModule(B));
  Module C = makeChaseModule(DataSite, NextSite);
  C.Functions[0].Blocks[1].Insts[0].Imm ^= 1;
  EXPECT_NE(ProgramCache::hashModule(A), ProgramCache::hashModule(C));

  ProgramCache Cache(4);
  Cache.get(A);
  Cache.get(B);
  ProgramCache::CacheStats S = Cache.stats();
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_EQ(S.Hits, 1u);
}

// Attaching telemetry with the engine self-profiler must not move a single
// simulated counter under the trace tier (on-trace sampling re-arms the
// shared fuel/sample stop), and on-trace samples attribute to trace slots.
TEST(TraceEngine, SelfProfilerNonPerturbingOnTrace) {
  uint32_t DataSite = 0, NextSite = 0;
  Module Chase = makeChaseModule(DataSite, NextSite);
  SimMemory Mem;
  fillChaseList(Mem, 64, 64);

  Interpreter Plain(Chase, Mem, TimingModel(),
                    interpConfig(InterpreterConfig::Engine::Trace));
  RunStats PlainStats = Plain.run();
  ASSERT_GT(Plain.traceTier().Iterations, 0u);

  ObsConfig OC;
  OC.Enabled = true;
  OC.SelfProfile = true;
  OC.SelfProfileWindow = 16;
  ObsSession Obs(OC);
  Interpreter Profiled(Chase, Mem, TimingModel(),
                       interpConfig(InterpreterConfig::Engine::Trace));
  Profiled.attachObs(&Obs);
  RunStats ProfiledStats = Profiled.run();
  expectSameStats(PlainStats, ProfiledStats);
  EXPECT_GT(Profiled.traceTier().Iterations, 0u);

  const EngineSelfProfiler *SP = Obs.selfProfiler();
  ASSERT_NE(SP, nullptr);
  bool SawTraceSlot = false;
  for (const EngineSelfProfiler::Entry &E : SP->entries())
    if (std::string(SP->slotName(E.Slot)).rfind("trace:", 0) == 0)
      SawTraceSlot = true;
  EXPECT_TRUE(SawTraceSlot) << "no sample landed in a trace frame";
}

// Trace-tier telemetry counters: populated under Engine::Trace, flat zero
// under Engine::Decoded, and the shared interp.* counters agree.
TEST(TraceEngine, TelemetryCountersMatchDecodedPlusTraceTier) {
  uint32_t DataSite = 0, NextSite = 0;
  Module Chase = makeChaseModule(DataSite, NextSite);
  SimMemory Mem;
  fillChaseList(Mem, 64, 64);

  ObsConfig OC;
  OC.Enabled = true;
  ObsSession DecObs(OC), TrcObs(OC);
  {
    Interpreter Dec(Chase, Mem, TimingModel(),
                    interpConfig(InterpreterConfig::Engine::Decoded));
    Dec.attachObs(&DecObs);
    Dec.run();
  }
  {
    Interpreter Trc(Chase, Mem, TimingModel(),
                    interpConfig(InterpreterConfig::Engine::Trace));
    Trc.attachObs(&TrcObs);
    Trc.run();
  }
  const auto &DecCounters = DecObs.registry().counters();
  const auto &TrcCounters = TrcObs.registry().counters();
  ASSERT_EQ(DecCounters.size(), TrcCounters.size());
  for (const auto &[Name, C] : DecCounters) {
    auto It = TrcCounters.find(Name);
    ASSERT_NE(It, TrcCounters.end()) << Name;
    if (Name.rfind("interp.trace", 0) == 0)
      EXPECT_EQ(C.value(), 0u) << Name;
    else
      EXPECT_EQ(C.value(), It->second.value()) << Name;
  }
  EXPECT_GT(TrcCounters.find("interp.trace_iterations")->second.value(), 0u);
  EXPECT_GT(TrcCounters.find("interp.trace_entries")->second.value(), 0u);
}

} // namespace
