//===- tests/test_semantics.cpp - Transformation semantics preservation -----===//
//
// Part of the StrideProf project test suite: parameterized sweeps over the
// whole workload suite asserting that profiling instrumentation and
// prefetch insertion never change program results -- the fundamental
// contract of both transformations.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "instrument/Instrumentation.h"
#include "interp/Interpreter.h"
#include "ir/Verifier.h"
#include "prefetch/PrefetchInsertion.h"
#include "profile/StrideProfiler.h"

#include <gtest/gtest.h>

using namespace sprof;

namespace {

/// Workload factories, indexable for TEST_P.
std::unique_ptr<Workload> workloadByIndex(int I) {
  auto Suite = makeSpecIntSuite();
  return std::move(Suite[static_cast<size_t>(I)]);
}

int64_t runChecksum(const Module &M, const SimMemory &Mem,
                    StrideProfiler *Profiler = nullptr) {
  Interpreter I(M, Mem);
  if (Profiler)
    I.attachProfiler(Profiler);
  RunStats S = I.run();
  EXPECT_TRUE(S.Completed);
  EXPECT_GT(S.Instructions, 0u);
  return S.ExitValue;
}

} // namespace

class WorkloadSweep : public ::testing::TestWithParam<int> {};

// Instrumentation must not change the program's result, for any method.
TEST_P(WorkloadSweep, InstrumentationPreservesSemantics) {
  auto W = workloadByIndex(GetParam());
  Program Base = W->build(DataSet::Train);
  int64_t Expected = runChecksum(Base.M, Base.Memory);
  ASSERT_NE(Expected, 0) << "workload checksum degenerate";

  for (ProfilingMethod M : allProfilingMethods()) {
    Program Prog = W->build(DataSet::Train);
    instrumentModule(Prog.M, M);
    ASSERT_TRUE(isWellFormed(Prog.M))
        << W->info().Name << " / " << profilingMethodName(M);
    StrideProfilerConfig PC;
    PC.Sampling.Enabled = methodUsesSampling(M);
    StrideProfiler P(Prog.M.NumLoadSites, PC);
    EXPECT_EQ(runChecksum(Prog.M, Prog.Memory, &P), Expected)
        << W->info().Name << " / " << profilingMethodName(M);
  }
}

// Prefetch insertion must not change the program's result either, and the
// transformed module must verify.
TEST_P(WorkloadSweep, PrefetchingPreservesSemantics) {
  auto W = workloadByIndex(GetParam());
  Pipeline P(*W);
  Program Base = W->build(DataSet::Train);
  int64_t Expected = runChecksum(Base.M, Base.Memory);

  ProfileRunResult Prof = P.runProfile(ProfilingMethod::NaiveAll,
                                       DataSet::Train,
                                       /*WithMemorySystem=*/false);
  Program Prog = W->build(DataSet::Train);
  ClassifierConfig Cfg;
  Cfg.EnableWsstPrefetch = true; // exercise all three sequences
  FeedbackResult FB = runFeedback(Prog.M, Prof.Edges, Prof.Strides, Cfg);
  insertPrefetches(Prog.M, FB);
  ASSERT_TRUE(isWellFormed(Prog.M)) << W->info().Name;
  EXPECT_EQ(runChecksum(Prog.M, Prog.Memory), Expected) << W->info().Name;
}

// Dependent prefetching (speculative loads) must also be semantics-free.
TEST_P(WorkloadSweep, DependentPrefetchingPreservesSemantics) {
  auto W = workloadByIndex(GetParam());
  Pipeline P(*W);
  Program Base = W->build(DataSet::Train);
  int64_t Expected = runChecksum(Base.M, Base.Memory);

  ProfileRunResult Prof = P.runProfile(ProfilingMethod::EdgeCheck,
                                       DataSet::Train,
                                       /*WithMemorySystem=*/false);
  Program Prog = W->build(DataSet::Train);
  ClassifierConfig Cfg;
  Cfg.EnableDependentPrefetch = true;
  FeedbackResult FB = runFeedback(Prog.M, Prof.Edges, Prof.Strides, Cfg);
  insertPrefetches(Prog.M, FB);
  ASSERT_TRUE(isWellFormed(Prog.M)) << W->info().Name;
  EXPECT_EQ(runChecksum(Prog.M, Prog.Memory), Expected) << W->info().Name;
}

// Identical builds are bit-identical in behaviour: run twice and compare
// instruction counts, load counts, and checksums.
TEST_P(WorkloadSweep, BuildsAreDeterministic) {
  auto W = workloadByIndex(GetParam());
  Program A = W->build(DataSet::Ref);
  Program B = W->build(DataSet::Ref);
  Interpreter IA(A.M, std::move(A.Memory));
  Interpreter IB(B.M, std::move(B.Memory));
  RunStats SA = IA.run();
  RunStats SB = IB.run();
  EXPECT_EQ(SA.ExitValue, SB.ExitValue);
  EXPECT_EQ(SA.Instructions, SB.Instructions);
  EXPECT_EQ(SA.LoadRefs, SB.LoadRefs);
}

// Prefetching never slows a benchmark down by more than noise -- the
// paper's selectivity claim (prefetching only where profitable).
TEST_P(WorkloadSweep, PrefetchingNeverHurts) {
  auto W = workloadByIndex(GetParam());
  Pipeline P(*W);
  double S = P.speedup(ProfilingMethod::EdgeCheck, DataSet::Train,
                       DataSet::Train);
  EXPECT_GT(S, 0.99) << W->info().Name;
}

INSTANTIATE_TEST_SUITE_P(
    Suite, WorkloadSweep, ::testing::Range(0, 12),
    [](const ::testing::TestParamInfo<int> &Info) {
      auto Suite = makeSpecIntSuite();
      std::string Name = Suite[static_cast<size_t>(Info.param)]->info().Name;
      // gtest names must be alphanumeric.
      std::string Clean;
      for (char C : Name)
        if (std::isalnum(static_cast<unsigned char>(C)))
          Clean += C;
      return Clean;
    });
