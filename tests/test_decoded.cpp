//===- tests/test_decoded.cpp - Decoded-engine differential tests ----------===//
//
// Part of the StrideProf project test suite.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Decoded execution engine's contract is bit-identical observable
/// behaviour to the Reference engine: same RunStats (every field), same
/// per-site counts, same serialized profiles, same classifier output, and
/// same telemetry tallies, for every workload and profiling method. These
/// tests enforce the contract differentially, including the places the
/// engines are structurally most different: instruction-count truncation
/// landing between the halves of a fused superinstruction, and calls that
/// decode-time inlining turned into spliced bodies.
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "instrument/Instrumentation.h"
#include "interp/DecodedProgram.h"
#include "interp/Interpreter.h"
#include "ir/IRBuilder.h"
#include "obs/Obs.h"
#include "obs/SelfProfiler.h"
#include "profile/ProfileStore.h"
#include "workloads/Builders.h"
#include "workloads/Workload.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

using namespace sprof;
using namespace sprof::test;

namespace {

PipelineConfig engineConfig(InterpreterConfig::Engine E) {
  PipelineConfig C;
  C.Interp.Exec = E;
  return C;
}

InterpreterConfig interpConfig(InterpreterConfig::Engine E) {
  InterpreterConfig C;
  C.Exec = E;
  return C;
}

/// Every RunStats field, so a divergence names the broken bucket instead
/// of failing on an opaque aggregate.
void expectSameStats(const RunStats &Ref, const RunStats &Dec) {
  EXPECT_EQ(Ref.Completed, Dec.Completed);
  EXPECT_EQ(Ref.Instructions, Dec.Instructions);
  EXPECT_EQ(Ref.Cycles, Dec.Cycles);
  EXPECT_EQ(Ref.BaseCycles, Dec.BaseCycles);
  EXPECT_EQ(Ref.MemStallCycles, Dec.MemStallCycles);
  EXPECT_EQ(Ref.InstrumentationCycles, Dec.InstrumentationCycles);
  EXPECT_EQ(Ref.RuntimeCycles, Dec.RuntimeCycles);
  EXPECT_EQ(Ref.LoadRefs, Dec.LoadRefs);
  EXPECT_EQ(Ref.SiteCounts, Dec.SiteCounts);
  EXPECT_EQ(Ref.ExitValue, Dec.ExitValue);
  ASSERT_EQ(Ref.Mem.Levels.size(), Dec.Mem.Levels.size());
  for (size_t L = 0; L != Ref.Mem.Levels.size(); ++L) {
    EXPECT_EQ(Ref.Mem.Levels[L].Hits, Dec.Mem.Levels[L].Hits);
    EXPECT_EQ(Ref.Mem.Levels[L].Misses, Dec.Mem.Levels[L].Misses);
  }
  EXPECT_EQ(Ref.Mem.DemandAccesses, Dec.Mem.DemandAccesses);
  EXPECT_EQ(Ref.Mem.PrefetchesIssued, Dec.Mem.PrefetchesIssued);
}

std::string profileText(const Workload &W, ProfilingMethod Method,
                        const ProfileRunResult &R) {
  ProfileStore Store(
      {W.info().Name, profilingMethodName(Method), dataSetName(DataSet::Train)},
      R.Edges, R.Strides);
  return Store.toString();
}

void expectSameProfileRun(const Workload &W, ProfilingMethod Method,
                          bool WithMemorySystem) {
  SCOPED_TRACE(W.info().Name + std::string("/") +
               profilingMethodName(Method));
  Pipeline Ref(W, engineConfig(InterpreterConfig::Engine::Reference));
  Pipeline Dec(W, engineConfig(InterpreterConfig::Engine::Decoded));
  ProfileRunResult RR =
      Ref.runProfile(Method, DataSet::Train, WithMemorySystem);
  ProfileRunResult RD =
      Dec.runProfile(Method, DataSet::Train, WithMemorySystem);
  expectSameStats(RR.Stats, RD.Stats);
  EXPECT_EQ(profileText(W, Method, RR), profileText(W, Method, RD));
  EXPECT_EQ(RR.StrideInvocations, RD.StrideInvocations);
  EXPECT_EQ(RR.StrideProcessed, RD.StrideProcessed);
  EXPECT_EQ(RR.LfuCalls, RD.LfuCalls);
}

// Every workload in the suite, on a check method and a sampling method
// (the two instrumentation families with the most runtime machinery).
TEST(DecodedEngine, ProfilesMatchReferenceAcrossSuite) {
  for (const std::unique_ptr<Workload> &W : makeSpecIntSuite()) {
    expectSameProfileRun(*W, ProfilingMethod::EdgeCheck,
                         /*WithMemorySystem=*/false);
    expectSameProfileRun(*W, ProfilingMethod::SampleNaiveLoop,
                         /*WithMemorySystem=*/false);
  }
}

// Every profiling method, on the workload with the most call/indirection
// structure (mcf: pointer chase + two inlinable helpers).
TEST(DecodedEngine, ProfilesMatchReferenceAcrossMethods) {
  std::unique_ptr<Workload> W = makeWorkloadByName("181.mcf");
  ASSERT_NE(W, nullptr);
  for (ProfilingMethod Method : allProfilingMethods())
    expectSameProfileRun(*W, Method, /*WithMemorySystem=*/false);
}

// Cache-hierarchy timing (MemStallCycles, level hit/miss counts) through
// both engines' demandAccess paths.
TEST(DecodedEngine, MemorySystemAccountingMatches) {
  std::unique_ptr<Workload> W = makeWorkloadByName("164.gzip");
  ASSERT_NE(W, nullptr);
  expectSameProfileRun(*W, ProfilingMethod::EdgeCheck,
                       /*WithMemorySystem=*/true);
}

// Classifier output and the timed prefetched run (the feedback half of the
// pipeline) from profiles collected by either engine.
TEST(DecodedEngine, ClassifierAndTimedRunMatch) {
  for (const char *Name : {"181.mcf", "254.gap"}) {
    SCOPED_TRACE(Name);
    std::unique_ptr<Workload> W = makeWorkloadByName(Name);
    ASSERT_NE(W, nullptr);
    Pipeline Ref(*W, engineConfig(InterpreterConfig::Engine::Reference));
    Pipeline Dec(*W, engineConfig(InterpreterConfig::Engine::Decoded));

    ProfileRunResult PR = Ref.runProfile(ProfilingMethod::EdgeCheck,
                                         DataSet::Train, false);
    ProfileRunResult PD = Dec.runProfile(ProfilingMethod::EdgeCheck,
                                         DataSet::Train, false);

    EXPECT_EQ(Ref.runBaseline(DataSet::Train).Cycles,
              Dec.runBaseline(DataSet::Train).Cycles);

    TimedRunResult TR = Ref.runPrefetched(DataSet::Train, PR.Edges,
                                          PR.Strides);
    TimedRunResult TD = Dec.runPrefetched(DataSet::Train, PD.Edges,
                                          PD.Strides);
    expectSameStats(TR.Stats, TD.Stats);
    EXPECT_EQ(TR.Feedback.SiteClass, TD.Feedback.SiteClass);
    EXPECT_EQ(TR.Feedback.Decisions.size(), TD.Feedback.Decisions.size());
    EXPECT_EQ(TR.Prefetches.InstructionsAdded,
              TD.Prefetches.InstructionsAdded);
  }
}

PipelineConfig attributedConfig(InterpreterConfig::Engine E) {
  PipelineConfig C = engineConfig(E);
  C.Memory.EnableAttribution = true;
  return C;
}

void expectSameAttribution(const AttributionData &Ref,
                           const AttributionData &Dec) {
  EXPECT_EQ(Ref.Total.Useful, Dec.Total.Useful);
  EXPECT_EQ(Ref.Total.Late, Dec.Total.Late);
  EXPECT_EQ(Ref.Total.Early, Dec.Total.Early);
  EXPECT_EQ(Ref.Total.Redundant, Dec.Total.Redundant);
  ASSERT_EQ(Ref.PerSite.size(), Dec.PerSite.size());
  for (size_t S = 0; S != Ref.PerSite.size(); ++S) {
    EXPECT_EQ(Ref.PerSite[S].Useful, Dec.PerSite[S].Useful) << "site " << S;
    EXPECT_EQ(Ref.PerSite[S].Late, Dec.PerSite[S].Late) << "site " << S;
    EXPECT_EQ(Ref.PerSite[S].Early, Dec.PerSite[S].Early) << "site " << S;
    EXPECT_EQ(Ref.PerSite[S].Redundant, Dec.PerSite[S].Redundant)
        << "site " << S;
  }
  ASSERT_EQ(Ref.SiteMiss.size(), Dec.SiteMiss.size());
  for (size_t S = 0; S != Ref.SiteMiss.size(); ++S) {
    EXPECT_EQ(Ref.SiteMiss[S].Accesses, Dec.SiteMiss[S].Accesses)
        << "site " << S;
    EXPECT_EQ(Ref.SiteMiss[S].L1Misses, Dec.SiteMiss[S].L1Misses)
        << "site " << S;
    EXPECT_EQ(Ref.SiteMiss[S].FullMisses, Dec.SiteMiss[S].FullMisses)
        << "site " << S;
    EXPECT_EQ(Ref.SiteMiss[S].StallCycles, Dec.SiteMiss[S].StallCycles)
        << "site " << S;
  }
}

// Attribution is an observer: turning it on must not move a single counter
// in either engine's accounting, and with it off the timed run stays
// bit-identical to the pre-attribution pipeline between engines.
TEST(DecodedEngine, AttributionOffLeavesTimedRunBitIdentical) {
  std::unique_ptr<Workload> W = makeWorkloadByName("181.mcf");
  ASSERT_NE(W, nullptr);
  for (InterpreterConfig::Engine E : {InterpreterConfig::Engine::Reference,
                                      InterpreterConfig::Engine::Decoded}) {
    SCOPED_TRACE(E == InterpreterConfig::Engine::Decoded ? "decoded"
                                                         : "reference");
    Pipeline Plain(*W, engineConfig(E));
    Pipeline Attributed(*W, attributedConfig(E));
    ProfileRunResult P =
        Plain.runProfile(ProfilingMethod::EdgeCheck, DataSet::Train, false);
    TimedRunResult Off = Plain.runPrefetched(DataSet::Train, P.Edges,
                                             P.Strides);
    TimedRunResult On = Attributed.runPrefetched(DataSet::Train, P.Edges,
                                                 P.Strides);
    expectSameStats(Off.Stats, On.Stats);
    EXPECT_EQ(Off.Stats.Mem.PrefetchesRedundant,
              On.Stats.Mem.PrefetchesRedundant);
    EXPECT_EQ(Off.Stats.Mem.PrefetchesUnused, On.Stats.Mem.PrefetchesUnused);
    EXPECT_EQ(Off.Stats.Mem.StallCycles, On.Stats.Mem.StallCycles);
    EXPECT_FALSE(Off.Attribution.Enabled);
    EXPECT_TRUE(On.Attribution.Enabled);
    EXPECT_TRUE(On.Attribution.Finalized);
  }
}

// The attribution identity — useful + late + early + redundant equals
// prefetches issued, exactly — on every workload in the suite, and the
// per-site breakdown agrees between engines.
TEST(DecodedEngine, AttributionSumsExactlyAcrossSuite) {
  for (const std::unique_ptr<Workload> &W : makeSpecIntSuite()) {
    SCOPED_TRACE(W->info().Name);
    Pipeline Ref(*W, attributedConfig(InterpreterConfig::Engine::Reference));
    Pipeline Dec(*W, attributedConfig(InterpreterConfig::Engine::Decoded));
    ProfileRunResult PR =
        Ref.runProfile(ProfilingMethod::EdgeCheck, DataSet::Train, false);
    ProfileRunResult PD =
        Dec.runProfile(ProfilingMethod::EdgeCheck, DataSet::Train, false);
    TimedRunResult TR = Ref.runPrefetched(DataSet::Train, PR.Edges,
                                          PR.Strides);
    TimedRunResult TD = Dec.runPrefetched(DataSet::Train, PD.Edges,
                                          PD.Strides);
    for (const TimedRunResult *T : {&TR, &TD}) {
      ASSERT_TRUE(T->Attribution.Finalized);
      EXPECT_EQ(T->Attribution.Total.issued(),
                T->Stats.Mem.PrefetchesIssued);
      PrefetchOutcomeCounts PerSiteSum;
      for (const PrefetchOutcomeCounts &C : T->Attribution.PerSite)
        PerSiteSum += C;
      EXPECT_EQ(PerSiteSum.issued(), T->Attribution.Total.issued());
      uint64_t SiteAccesses = 0;
      for (const SiteMissStats &M : T->Attribution.SiteMiss)
        SiteAccesses += M.Accesses;
      EXPECT_EQ(SiteAccesses, T->Stats.Mem.DemandAccesses);
    }
    expectSameStats(TR.Stats, TD.Stats);
    expectSameAttribution(TR.Attribution, TD.Attribution);
  }
}

/// A loop whose body calls a two-load leaf helper: the decoder inlines the
/// call, so the spliced body, its register window, and its RetInlined all
/// sit inside the loop.
Module makeCallChaseModule() {
  Module M;
  M.Name = "chase.call";
  IRBuilder B(M);

  uint32_t Probe = B.startFunction("probe", 1);
  {
    Reg Addr = 0;
    Reg V = B.load(Addr, 8);
    Reg W = B.load(Addr, 16);
    Reg S = B.add(Operand::reg(V), Operand::reg(W));
    B.ret(Operand::reg(S));
  }

  B.startFunction("main", 0);
  M.EntryFunction = 1;
  Function &F = B.function();
  uint32_t Header = F.newBlock("head");
  uint32_t Body = F.newBlock("body");
  uint32_t Exit = F.newBlock("exit");

  Reg P = B.movImm(0x1000);
  Reg Acc = B.movImm(0);
  B.jmp(Header);

  B.setBlock(Header);
  Reg C = B.cmp(Opcode::CmpNe, Operand::reg(P), Operand::imm(0));
  B.br(Operand::reg(C), Body, Exit);

  B.setBlock(Body);
  Reg S = B.call(Probe, {Operand::reg(P)}, B.newReg());
  B.add(Operand::reg(Acc), Operand::reg(S), Acc);
  B.load(P, 0, P);
  B.jmp(Header);

  B.setBlock(Exit);
  B.ret(Operand::reg(Acc));
  return M;
}

SimMemory makeCallChaseMemory() {
  SimMemory Mem;
  uint64_t Addr = 0x1000;
  for (int I = 0; I != 40; ++I) {
    uint64_t Next = I != 39 ? Addr + 64 : 0;
    Mem.write64(Addr + 0, static_cast<int64_t>(Next));
    Mem.write64(Addr + 8, I);
    Mem.write64(Addr + 16, 2 * I + 1);
    Addr += 64;
  }
  return Mem;
}

// The engines must agree for EVERY MaxInstructions value, not just at
// natural stopping points: a truncation budget can expire between the two
// halves of a fused pair or in the middle of an inlined callee body, and
// the Decoded engine has explicit code for both boundaries.
TEST(DecodedEngine, TruncationMatchesAtEveryBoundary) {
  uint32_t DataSite = 0, NextSite = 0;
  Module Chase = makeChaseModule(DataSite, NextSite);
  SimMemory ChaseMem;
  fillChaseList(ChaseMem, 32, 64);
  Module CallChase = makeCallChaseModule();
  SimMemory CallMem = makeCallChaseMemory();

  struct Case {
    const Module *M;
    const SimMemory *Mem;
    uint64_t Limits;
  };
  for (const Case &C : {Case{&Chase, &ChaseMem, 200},
                        Case{&CallChase, &CallMem, 400}}) {
    SCOPED_TRACE(C.M->Name);
    for (uint64_t Limit = 0; Limit <= C.Limits; ++Limit) {
      Interpreter Ref(*C.M, *C.Mem, TimingModel(),
                      interpConfig(InterpreterConfig::Engine::Reference));
      Interpreter Dec(*C.M, *C.Mem, TimingModel(),
                      interpConfig(InterpreterConfig::Engine::Decoded));
      RunStats RR = Ref.run(Limit);
      RunStats RD = Dec.run(Limit);
      SCOPED_TRACE("limit=" + std::to_string(Limit));
      expectSameStats(RR, RD);
    }
  }
}

// The opcode-mix tallies both engines flush into telemetry (including the
// simulated call depth, which the Decoded engine tracks without pushing
// frames for inlined calls).
TEST(DecodedEngine, TelemetryTalliesMatch) {
  std::unique_ptr<Workload> W = makeWorkloadByName("181.mcf");
  ASSERT_NE(W, nullptr);

  ObsConfig OC;
  OC.Enabled = true;
  ObsSession RefObs(OC), DecObs(OC);
  for (auto E : {InterpreterConfig::Engine::Reference,
                 InterpreterConfig::Engine::Decoded}) {
    Program Prog = W->build({DataSet::Train});
    Interpreter I(Prog.M, std::move(Prog.Memory), TimingModel(),
                  interpConfig(E));
    I.attachObs(E == InterpreterConfig::Engine::Reference ? &RefObs
                                                          : &DecObs);
    I.run();
  }

  const auto &RefCounters = RefObs.registry().counters();
  const auto &DecCounters = DecObs.registry().counters();
  ASSERT_EQ(RefCounters.size(), DecCounters.size());
  for (const auto &[Name, C] : RefCounters) {
    auto It = DecCounters.find(Name);
    ASSERT_NE(It, DecCounters.end()) << Name;
    EXPECT_EQ(C.value(), It->second.value()) << Name;
  }
  EXPECT_EQ(RefObs.registry().gauge("interp.max_stack_depth").value(),
            DecObs.registry().gauge("interp.max_stack_depth").value());
}

// A loop whose body is dominated by mul -- an opcode the fusion pass never
// pairs -- so the self-profiler's top dispatch slot is known a priori.
Program makeMulHeavyProgram() {
  Program Prog;
  Prog.M.Name = "mulheavy";
  IRBuilder B(Prog.M);
  B.startFunction("main", 0);
  Reg Acc = B.movImm(1);
  emitCountedLoop(B, Operand::imm(20000), [&](IRBuilder &OB, Reg) {
    for (int I = 0; I != 8; ++I)
      OB.mul(Operand::reg(Acc), Operand::imm(3), Acc);
  });
  B.halt();
  return Prog;
}

// The engine self-profiler samples every Window-th dispatch, so its sample
// counts are a pure function of the instruction stream: two profiled runs
// agree exactly, the hottest slot on a mul-heavy loop is mul, and -- the
// non-perturbation half -- attaching the profiler leaves every simulated
// accounting field bit-identical to the unprofiled run.
TEST(DecodedEngine, SelfProfilerIsDeterministicAndNonPerturbing) {
  Program Plain = makeMulHeavyProgram();
  Interpreter PlainI(Plain.M, std::move(Plain.Memory), TimingModel(),
                     interpConfig(InterpreterConfig::Engine::Decoded));
  RunStats PlainStats = PlainI.run();

  ObsConfig OC;
  OC.Enabled = true;
  OC.SelfProfile = true;
  OC.SelfProfileWindow = 64;

  auto RunProfiled = [&OC](RunStats &Stats,
                           std::vector<EngineSelfProfiler::Entry> &Entries,
                           std::string &TopOp, uint64_t &Total) {
    ObsSession Obs(OC);
    Program Prog = makeMulHeavyProgram();
    Interpreter I(Prog.M, std::move(Prog.Memory), TimingModel(),
                  interpConfig(InterpreterConfig::Engine::Decoded));
    I.attachObs(&Obs);
    Stats = I.run();
    const EngineSelfProfiler *SP = Obs.selfProfiler();
    ASSERT_NE(SP, nullptr);
    Entries = SP->entries();
    ASSERT_FALSE(Entries.empty());
    TopOp = SP->slotName(Entries.front().Slot);
    Total = SP->totalSamples();
  };

  RunStats S1, S2;
  std::vector<EngineSelfProfiler::Entry> E1, E2;
  std::string Top1, Top2;
  uint64_t Total1 = 0, Total2 = 0;
  RunProfiled(S1, E1, Top1, Total1);
  RunProfiled(S2, E2, Top2, Total2);

  expectSameStats(PlainStats, S1);
  expectSameStats(PlainStats, S2);

  // Deterministic sampling: identical cells with identical counts (the ns
  // estimates are host-noisy and deliberately not compared).
  EXPECT_EQ(Total1, Total2);
  EXPECT_GT(Total1, 0u);
  ASSERT_EQ(E1.size(), E2.size());
  for (size_t I = 0; I != E1.size(); ++I) {
    EXPECT_EQ(E1[I].Workload, E2[I].Workload);
    EXPECT_EQ(E1[I].Phase, E2[I].Phase);
    EXPECT_EQ(E1[I].Slot, E2[I].Slot);
    EXPECT_EQ(E1[I].Samples, E2[I].Samples);
  }
  // Every 64th dispatch sampled: the totals agree with the dispatch count
  // to within one window.
  EXPECT_LE(Total1, S1.Instructions / 64 + 1);
  EXPECT_GE(Total1, S1.Instructions / 64 / 2);
  EXPECT_EQ(Top1, "mul");
  EXPECT_EQ(Top2, "mul");
}

// White-box checks of the decoded form itself: the leaf helper call is
// inlined, and the pointer-chase load carries the prefetch-hint flag the
// decode-time dataflow pass derives.
TEST(DecodedEngine, DecoderInlinesLeafCallsAndFlagsPointerLoads) {
  Module M = makeCallChaseModule();
  DecodedProgram DP(M);

  bool SawCallInlined = false, SawRetInlined = false, SawRealCall = false;
  for (const DInst &D : DP.code()) {
    if (D.DOp == static_cast<uint8_t>(FusedOp::CallInlined))
      SawCallInlined = true;
    if (D.DOp == static_cast<uint8_t>(FusedOp::RetInlined))
      SawRetInlined = true;
    if (D.DOp == static_cast<uint8_t>(Opcode::Call))
      SawRealCall = true;
  }
  EXPECT_TRUE(SawCallInlined);
  EXPECT_TRUE(SawRetInlined);
  EXPECT_FALSE(SawRealCall); // the only call site qualifies for inlining

  // The `p = p->next` load feeds the next iteration's dereferences (and
  // the helper's parameter), so its producer must carry the hint.
  bool SawFlaggedLoad = false;
  for (const DInst &D : DP.code())
    if (D.Op == Opcode::Load && D.PrefetchDst)
      SawFlaggedLoad = true;
  EXPECT_TRUE(SawFlaggedLoad);
}

} // namespace

// The Decoded engine's batched stride path: a deliberately tiny ring
// (drain every 3 events) plus tiny chunk-sampling phases force drain
// boundaries to straddle chunk-phase flips thousands of times, while the
// Reference engine runs the unbatched executable spec. Every method, so
// the batch path is pinned against both sampling families and both check
// styles.
TEST(DecodedEngine, TinyStrideRingMatchesReferenceAcrossMethods) {
  std::unique_ptr<Workload> W = makeWorkloadByName("181.mcf");
  ASSERT_NE(W, nullptr);
  for (ProfilingMethod Method : allProfilingMethods()) {
    SCOPED_TRACE(profilingMethodName(Method));
    PipelineConfig RC = engineConfig(InterpreterConfig::Engine::Reference);
    PipelineConfig DC = engineConfig(InterpreterConfig::Engine::Decoded);
    for (PipelineConfig *C : {&RC, &DC}) {
      C->Interp.StrideBatchWindow = 3;
      C->Profiler.Sampling.ChunkSkip = 7;
      C->Profiler.Sampling.ChunkProfile = 5;
      C->Profiler.Sampling.FineInterval = 2;
    }
    Pipeline Ref(*W, RC);
    Pipeline Dec(*W, DC);
    ProfileRunResult RR = Ref.runProfile(Method, DataSet::Train, false);
    ProfileRunResult RD = Dec.runProfile(Method, DataSet::Train, false);
    expectSameStats(RR.Stats, RD.Stats);
    EXPECT_EQ(profileText(*W, Method, RR), profileText(*W, Method, RD));
    EXPECT_EQ(RR.StrideInvocations, RD.StrideInvocations);
    EXPECT_EQ(RR.StrideProcessed, RD.StrideProcessed);
    EXPECT_EQ(RR.LfuCalls, RD.LfuCalls);
  }
}
