//===- tests/test_memsys.cpp - Cache hierarchy unit tests -------------------===//
//
// Part of the StrideProf project test suite.
//
//===----------------------------------------------------------------------===//

#include "memsys/Cache.h"

#include <gtest/gtest.h>

using namespace sprof;

namespace {

MemoryConfig tinyConfig() {
  MemoryConfig C;
  C.Levels = {
      {"L1", 1024, 2, 64, 2},   // 8 sets
      {"L2", 8192, 4, 64, 9},   // 32 sets
      {"L3", 65536, 4, 64, 24}, // 256 sets
  };
  C.MemoryLatency = 160;
  return C;
}

} // namespace

TEST(CacheLevel, ProbeMissThenHit) {
  CacheLevel L(CacheLevelConfig{"L1", 1024, 2, 64, 2});
  uint64_t Ready = 0;
  EXPECT_FALSE(L.probe(100, Ready));
  L.fill(100, 5);
  ASSERT_TRUE(L.probe(100, Ready));
  EXPECT_EQ(Ready, 5u);
}

TEST(CacheLevel, LruEviction) {
  // 2-way: fill three lines into the same set, the least recently used
  // falls out.
  CacheLevel L(CacheLevelConfig{"L1", 1024, 2, 64, 2});
  const uint64_t NumSets = 8;
  uint64_t A = 0, B = NumSets, C = 2 * NumSets; // same set (set 0)
  uint64_t Ready = 0;
  L.fill(A, 0);
  L.fill(B, 0);
  ASSERT_TRUE(L.probe(A, Ready)); // A most recently used
  L.fill(C, 0);                   // evicts B
  EXPECT_TRUE(L.probe(A, Ready));
  EXPECT_FALSE(L.probe(B, Ready));
  EXPECT_TRUE(L.probe(C, Ready));
}

TEST(MemoryHierarchy, MissFillsAllLevelsThenHitsL1) {
  MemoryHierarchy MH(tinyConfig());
  uint64_t Lat = MH.demandAccess(0x1000, 0);
  EXPECT_EQ(Lat, 160u);
  Lat = MH.demandAccess(0x1008, 200); // same line
  EXPECT_EQ(Lat, 2u);
  EXPECT_EQ(MH.stats().Levels[0].Hits, 1u);
  EXPECT_EQ(MH.stats().Levels[2].Misses, 1u);
}

TEST(MemoryHierarchy, L2HitAfterL1Eviction) {
  MemoryHierarchy MH(tinyConfig());
  // Fill line X, then stream enough lines through its L1 set to evict it
  // from L1 while it stays in L2 (L2 has 4 ways over 32 sets).
  MH.demandAccess(0, 0);
  // L1: 8 sets, 2 ways -> lines 8 and 16 map to set 0 as well.
  MH.demandAccess(8 * 64, 0);
  MH.demandAccess(16 * 64, 0);
  uint64_t Lat = MH.demandAccess(0, 1000);
  EXPECT_EQ(Lat, 9u); // L2 hit
}

TEST(MemoryHierarchy, PrefetchHidesMissLatency) {
  MemoryHierarchy MH(tinyConfig());
  MH.prefetch(0x4000, 0);
  // Long after the fill completes: a full L1 hit.
  uint64_t Lat = MH.demandAccess(0x4000, 1000);
  EXPECT_EQ(Lat, 2u);
  EXPECT_EQ(MH.stats().PrefetchesIssued, 1u);
  EXPECT_EQ(MH.stats().LatePrefetchHits, 0u);
}

TEST(MemoryHierarchy, LatePrefetchStallsPartially) {
  MemoryHierarchy MH(tinyConfig());
  MH.prefetch(0x4000, 0); // ready at 160
  uint64_t Lat = MH.demandAccess(0x4000, 100);
  EXPECT_EQ(Lat, 60u); // 160 - 100
  EXPECT_EQ(MH.stats().LatePrefetchHits, 1u);
}

TEST(MemoryHierarchy, RedundantPrefetchDetected) {
  MemoryHierarchy MH(tinyConfig());
  MH.demandAccess(0x4000, 0);
  MH.prefetch(0x4000, 10);
  EXPECT_EQ(MH.stats().PrefetchesRedundant, 1u);
}

TEST(MemoryHierarchy, StreamingBeyondCapacityAlwaysMisses) {
  MemoryHierarchy MH(tinyConfig());
  // Two sequential sweeps over 2x the L3 capacity: LRU keeps evicting the
  // lines we are about to need, so the second sweep misses as well.
  const uint64_t Lines = 2 * 65536 / 64;
  for (int Sweep = 0; Sweep != 2; ++Sweep)
    for (uint64_t L = 0; L != Lines; ++L)
      MH.demandAccess(L * 64, 0);
  EXPECT_EQ(MH.stats().Levels[2].Misses, 2 * Lines);
}

TEST(MemoryHierarchy, DefaultConfigIsItanium) {
  MemoryConfig C;
  ASSERT_EQ(C.Levels.size(), 3u);
  EXPECT_EQ(C.Levels[0].SizeBytes, 16u * 1024);
  EXPECT_EQ(C.Levels[0].Associativity, 4u);
  EXPECT_EQ(C.Levels[1].SizeBytes, 96u * 1024);
  EXPECT_EQ(C.Levels[1].Associativity, 6u);
  EXPECT_EQ(C.Levels[2].SizeBytes, 2u * 1024 * 1024);
  EXPECT_EQ(C.Levels[2].Associativity, 4u);
}

TEST(MemoryHierarchy, PrefetchUsefulnessAccounting) {
  MemoryHierarchy MH{MemoryConfig()};
  // Useful prefetch: prefetched, then demanded.
  MH.prefetch(0x10000, 0);
  MH.demandAccess(0x10000, 1000);
  EXPECT_EQ(MH.stats().PrefetchesUseful, 1u);
  EXPECT_EQ(MH.stats().PrefetchesUnused, 0u);
  // Second touch of the same line is a plain hit, not another "useful".
  MH.demandAccess(0x10000, 2000);
  EXPECT_EQ(MH.stats().PrefetchesUseful, 1u);
}

TEST(MemoryHierarchy, UnusedPrefetchCountedOnEviction) {
  MemoryConfig Small;
  Small.Levels = {{"L1", 1024, 2, 64, 2}}; // 8 sets, 2 ways
  MemoryHierarchy MH(Small);
  // Prefetch a line into set 0, then push two demand lines through the
  // same set: the prefetched line is evicted without use.
  MH.prefetch(0, 0);
  MH.demandAccess(8 * 64, 10);
  MH.demandAccess(16 * 64, 20);
  MH.demandAccess(24 * 64, 30);
  EXPECT_EQ(MH.stats().PrefetchesUnused, 1u);
  EXPECT_EQ(MH.stats().PrefetchesUseful, 0u);
}

// -- Prefetch-outcome attribution ------------------------------------------

TEST(Attribution, ClassifiesAllFourOutcomesPerSite) {
  MemoryConfig Small;
  Small.Levels = {{"L1", 1024, 2, 64, 2}}; // 8 sets, 2 ways
  Small.MemoryLatency = 160;
  MemoryHierarchy MH(Small);
  MH.enableAttribution(4);

  // Site 0: useful -- prefetch, demand long after the fill completes.
  MH.prefetch(0x4000, 0, /*SiteId=*/0);
  MH.demandAccess(0x4000, 1000, /*SiteId=*/0);
  // Site 1: late -- demand arrives while the fill is in flight.
  MH.prefetch(0x8000, 0, /*SiteId=*/1);
  MH.demandAccess(0x8000, 100, /*SiteId=*/1);
  // Site 2: redundant -- the line is already in L1 from site 0's use.
  MH.prefetch(0x4000, 2000, /*SiteId=*/2);
  // Site 3: early -- prefetched into set 0, then evicted by demand traffic.
  MH.prefetch(0, 0, /*SiteId=*/3);
  MH.demandAccess(8 * 64, 10);
  MH.demandAccess(16 * 64, 20);
  MH.demandAccess(24 * 64, 30);

  MH.finalizeAttribution();
  const AttributionData &A = MH.attribution();
  ASSERT_TRUE(A.Enabled);
  ASSERT_TRUE(A.Finalized);
  EXPECT_EQ(A.PerSite[0].Useful, 1u);
  EXPECT_EQ(A.PerSite[1].Late, 1u);
  EXPECT_EQ(A.PerSite[2].Redundant, 1u);
  EXPECT_EQ(A.PerSite[3].Early, 1u);
  EXPECT_EQ(A.Total.issued(), MH.stats().PrefetchesIssued);
}

TEST(Attribution, FinalizeDrainsResidentLinesIntoEarly) {
  MemoryHierarchy MH{MemoryConfig()};
  MH.enableAttribution(1);
  MH.prefetch(0x1000, 0, 0);
  MH.prefetch(0x2000, 0, 0); // both still resident, never demanded
  MH.finalizeAttribution();
  MH.finalizeAttribution(); // idempotent
  const AttributionData &A = MH.attribution();
  EXPECT_EQ(A.PerSite[0].Early, 2u);
  EXPECT_EQ(A.Total.issued(), 2u);
  // The drain is attribution-only bookkeeping; the eviction-based
  // pollution counter is untouched.
  EXPECT_EQ(MH.stats().PrefetchesUnused, 0u);
}

TEST(Attribution, SiteMissStatsAndUnattributedBucket) {
  MemoryConfig Small;
  Small.Levels = {{"L1", 1024, 2, 64, 2}};
  Small.MemoryLatency = 160;
  MemoryHierarchy MH(Small);
  MH.enableAttribution(2);

  MH.demandAccess(0x1000, 0, /*SiteId=*/0);   // full miss
  MH.demandAccess(0x1000, 500, /*SiteId=*/0); // L1 hit
  MH.demandAccess(0x2000, 0, /*SiteId=*/1);   // full miss
  MH.demandAccess(0x3000, 0, NoSiteId);       // unattributed full miss
  MH.demandAccess(0x4000, 0, /*SiteId=*/99);  // out of range -> unattributed

  MH.finalizeAttribution();
  const AttributionData &A = MH.attribution();
  ASSERT_EQ(A.SiteMiss.size(), 3u);
  EXPECT_EQ(A.SiteMiss[0].Accesses, 2u);
  EXPECT_EQ(A.SiteMiss[0].L1Misses, 1u);
  EXPECT_EQ(A.SiteMiss[0].FullMisses, 1u);
  EXPECT_EQ(A.SiteMiss[0].StallCycles, 160u + 2u);
  EXPECT_EQ(A.SiteMiss[1].Accesses, 1u);
  EXPECT_EQ(A.SiteMiss[2].Accesses, 2u); // NoSiteId + out-of-range
  EXPECT_EQ(A.SiteMiss[2].FullMisses, 2u);

  uint64_t Accesses = 0;
  for (const SiteMissStats &SM : A.SiteMiss)
    Accesses += SM.Accesses;
  EXPECT_EQ(Accesses, MH.stats().DemandAccesses);
}

TEST(Attribution, DisabledAttributionChangesNothing) {
  // Same traffic with and without attribution: identical MemoryStats.
  auto Drive = [](MemoryHierarchy &MH) {
    MH.prefetch(0, 0, 0);
    MH.demandAccess(0, 100, 0);
    MH.demandAccess(8 * 64, 10, 1);
    MH.prefetch(0x9000, 50, 1);
    MH.demandAccess(0x9000, 60, NoSiteId);
  };
  MemoryHierarchy Plain{MemoryConfig()};
  MemoryHierarchy Attributed{MemoryConfig()};
  Attributed.enableAttribution(8);
  Drive(Plain);
  Drive(Attributed);
  Attributed.finalizeAttribution();

  const MemoryStats &SP = Plain.stats();
  const MemoryStats &SA = Attributed.stats();
  EXPECT_EQ(SP.DemandAccesses, SA.DemandAccesses);
  EXPECT_EQ(SP.StallCycles, SA.StallCycles);
  EXPECT_EQ(SP.PrefetchesIssued, SA.PrefetchesIssued);
  EXPECT_EQ(SP.PrefetchesUseful, SA.PrefetchesUseful);
  EXPECT_EQ(SP.PrefetchesRedundant, SA.PrefetchesRedundant);
  EXPECT_EQ(SP.LatePrefetchHits, SA.LatePrefetchHits);
  for (size_t L = 0; L != SP.Levels.size(); ++L) {
    EXPECT_EQ(SP.Levels[L].Hits, SA.Levels[L].Hits);
    EXPECT_EQ(SP.Levels[L].Misses, SA.Levels[L].Misses);
  }
  EXPECT_FALSE(Plain.attribution().Enabled);
  EXPECT_EQ(Attributed.attribution().Total.issued(), SA.PrefetchesIssued);
}

// -- Fast-path encoding invariants ----------------------------------------

TEST(CacheLevel, NumSetsRoundsUpToPowerOfTwo) {
  // 768B / (64B * 2 ways) = 6 raw sets -> rounded up to 8 so set selection
  // is a mask; a power-of-two config keeps its exact count.
  CacheLevel NonPow2(CacheLevelConfig{"L", 768, 2, 64, 2});
  EXPECT_EQ(NonPow2.numSets(), 8u);
  CacheLevel Pow2(CacheLevelConfig{"L", 1024, 2, 64, 2});
  EXPECT_EQ(Pow2.numSets(), 8u);
}

TEST(CacheLevel, ProbeMruAgreesWithProbeAndSkipsMarkedLines) {
  CacheLevel L(CacheLevelConfig{"L1", 1024, 2, 64, 2});
  uint64_t Ready = 0;
  // Unknown line: fast probe declines (it cannot distinguish "miss" from
  // "not the MRU way").
  EXPECT_FALSE(L.probeMru(100, Ready));
  L.fill(100, 5);
  ASSERT_TRUE(L.probeMru(100, Ready));
  EXPECT_EQ(Ready, 5u);
  // A prefetch-marked line must fail the fast path so the full probe can
  // observe (and clear) the first demand touch for attribution.
  L.fill(108, 9, /*Prefetched=*/true, /*PrefetchSite=*/3);
  EXPECT_FALSE(L.probeMru(108, Ready));
  bool WasUnused = false;
  uint32_t Site = NoSiteId;
  ASSERT_TRUE(L.probe(108, Ready, &WasUnused, &Site));
  EXPECT_TRUE(WasUnused);
  EXPECT_EQ(Site, 3u);
  // Mark cleared by that probe: the fast path accepts the line now.
  EXPECT_TRUE(L.probeMru(108, Ready));
}

// -- fill() refresh-path semantics (see the doc comment on fill) ----------

TEST(CacheLevel, FillRefreshMergesEarliestReadyAndKeepsMarkAndSite) {
  CacheLevel L(CacheLevelConfig{"L1", 1024, 2, 64, 2});
  // Prefetched fill, then two refresh fills of the same line: the earliest
  // ready time wins (a later one never pushes the line back), and the
  // original prefetch keeps ownership of the line's outcome -- mark and
  // site survive, whatever the refresh passes for them.
  L.fill(100, /*ReadyTime=*/100, /*Prefetched=*/true, /*PrefetchSite=*/7);
  L.fill(100, 50);
  L.fill(100, 80);
  uint64_t Ready = 0;
  bool WasUnused = false;
  uint32_t Site = NoSiteId;
  ASSERT_TRUE(L.probe(100, Ready, &WasUnused, &Site));
  EXPECT_EQ(Ready, 50u);
  EXPECT_TRUE(WasUnused);
  EXPECT_EQ(Site, 7u);
}

TEST(CacheLevel, FillRefreshBumpsLruRecency) {
  CacheLevel L(CacheLevelConfig{"L1", 1024, 2, 64, 2});
  const uint64_t NumSets = 8;
  uint64_t A = 0, B = NumSets, C = 2 * NumSets; // same set
  L.fill(A, 0);
  L.fill(B, 0);
  L.fill(A, 0); // refresh: A becomes most recently used
  L.fill(C, 0); // so the victim is B, not A
  uint64_t Ready = 0;
  EXPECT_TRUE(L.probe(A, Ready));
  EXPECT_FALSE(L.probe(B, Ready));
  EXPECT_TRUE(L.probe(C, Ready));
}

TEST(MemoryHierarchy, PrefetchFullMissDoubleFillKeepsAccounting) {
  // A full-miss prefetch reaches fill()'s refresh path: the first fill
  // pass covers every level (Hit == Levels.size() makes both loop bounds
  // identical), then the completion pass re-fills them all through the
  // refresh scan. Pin the net effect: the double fill is idempotent --
  // one issued prefetch, the line ready at Now + MemoryLatency, the L1
  // copy still marked and attributed to the issuing site.
  MemoryHierarchy MH(tinyConfig());
  MH.enableAttribution(4);
  MH.prefetch(0, /*Now=*/0, /*SiteId=*/2);
  EXPECT_EQ(MH.stats().PrefetchesIssued, 1u);
  // Demand use while the fill is in flight: a late prefetch, attributed to
  // the issuing site, stalling for the remaining cycles only.
  uint64_t Lat = MH.demandAccess(0, /*Now=*/10, /*SiteId=*/1);
  EXPECT_EQ(Lat, 150u); // 160 - 10 residual
  EXPECT_EQ(MH.stats().LatePrefetchHits, 1u);
  MH.finalizeAttribution();
  EXPECT_EQ(MH.attribution().PerSite[2].Late, 1u);
  EXPECT_EQ(MH.attribution().Total.issued(), 1u);
}
