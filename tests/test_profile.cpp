//===- tests/test_profile.cpp - LFU + strideProf runtime tests --------------===//
//
// Part of the StrideProf project test suite. Includes direct encodings of
// the paper's Figure 4 examples (stride value and stride difference
// profiles; phased vs alternated sequences).
//
//===----------------------------------------------------------------------===//

#include "instrument/Instrumentation.h"
#include "obs/Report.h"
#include "profile/LfuValueProfiler.h"
#include "profile/ProfileData.h"
#include "profile/StrideProfiler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

using namespace sprof;

namespace {

LfuConfig exactLfu() {
  LfuConfig C;
  C.CoarsenShift = 0;
  return C;
}

StrideProfilerConfig exactConfig() {
  StrideProfilerConfig C;
  C.Lfu.CoarsenShift = 0;
  C.AddrCoarsenShift = 0;
  return C;
}

/// Feeds an address sequence whose successive differences are \p Strides,
/// starting at \p Base.
void feedStrides(StrideProfiler &P, uint32_t Site,
                 const std::vector<int64_t> &Strides,
                 uint64_t Base = 0x100000) {
  uint64_t Addr = Base;
  P.profile(Site, Addr);
  for (int64_t S : Strides) {
    Addr = static_cast<uint64_t>(static_cast<int64_t>(Addr) + S);
    P.profile(Site, Addr);
  }
}

} // namespace

TEST(Lfu, CountsRepeatedValues) {
  LfuValueProfiler L(exactLfu());
  for (int I = 0; I != 10; ++I)
    L.add(128);
  for (int I = 0; I != 3; ++I)
    L.add(64);
  std::vector<ValueCount> Top = L.topValues();
  ASSERT_GE(Top.size(), 2u);
  EXPECT_EQ(Top[0].Value, 128);
  EXPECT_EQ(Top[0].Count, 10u);
  EXPECT_EQ(Top[1].Value, 64);
  EXPECT_EQ(Top[1].Count, 3u);
}

TEST(Lfu, LfuReplacementEvictsColdEntries) {
  LfuConfig C = exactLfu();
  C.TempSize = 2;
  C.FinalSize = 2;
  C.MergeInterval = 1000000; // never merge during the test
  LfuValueProfiler L(C);
  L.add(1);
  L.add(1);
  L.add(2);
  // Temp is {1:2, 2:1}; adding 3 must evict the LFU entry (2).
  L.add(3);
  std::vector<ValueCount> Top = L.topValues();
  ASSERT_EQ(Top.size(), 2u);
  EXPECT_EQ(Top[0].Value, 1);
  EXPECT_EQ(Top[1].Value, 3);
}

TEST(Lfu, MergePreservesHighFrequencyValues) {
  LfuConfig C = exactLfu();
  C.TempSize = 4;
  C.FinalSize = 2;
  C.MergeInterval = 8;
  LfuValueProfiler L(C);
  for (int I = 0; I != 40; ++I)
    L.add(100);
  for (int I = 0; I != 25; ++I)
    L.add(200);
  for (int I = 0; I != 3; ++I)
    L.add(I * 8 + 1000); // noise
  std::vector<ValueCount> Top = L.topValues();
  ASSERT_GE(Top.size(), 1u);
  EXPECT_EQ(Top[0].Value, 100);
  EXPECT_GE(L.numMerges(), 1u);
  // The dominant value's count survives merging (within one merge window).
  EXPECT_GE(Top[0].Count, 33u);
}

TEST(Lfu, CoarseningMergesNearbyValues) {
  LfuConfig C = exactLfu();
  C.CoarsenShift = 4; // paper's is_same_value: same 16-byte bucket
  LfuValueProfiler L(C);
  L.add(128);
  L.add(130); // same bucket as 128
  L.add(143); // same bucket as 128
  L.add(160); // different bucket
  std::vector<ValueCount> Top = L.topValues();
  ASSERT_GE(Top.size(), 2u);
  EXPECT_EQ(Top[0].Count, 3u);
  EXPECT_EQ(Top[0].Value, 128); // first representative wins
}

TEST(Lfu, WorkGrowsWithTrackedValues) {
  LfuValueProfiler L(exactLfu());
  unsigned FirstWork = L.add(1);
  for (int I = 2; I <= 8; ++I)
    L.add(I * 16);
  unsigned LaterWork = L.add(9 * 16);
  EXPECT_GT(LaterWork, FirstWork);
}

// Figure 4 (a)+(b): the phased stride sequence. Strides
// 2,2,2,2,100,100,100,100,1 have top1=2 (freq 4... the figure counts the
// initial occurrence too; with our first-address handling the 9 listed
// strides are what the profiler sees).
TEST(StrideProfiler, Figure4PhasedSequence) {
  StrideProfiler P(1, exactConfig());
  feedStrides(P, 0, {2, 2, 2, 2, 100, 100, 100, 100, 1});
  const StrideSiteData &D = P.site(0);
  EXPECT_EQ(D.totalStrides(), 9u);
  EXPECT_EQ(D.NumZeroStride, 0u);
  // Differences: 0,0,0,98,0,0,0,-99 -> six zero diffs.
  EXPECT_EQ(D.NumZeroDiff, 6u);

  StrideProfile SP = StrideProfile::fromProfiler(P);
  const StrideSiteSummary &S = SP.site(0);
  ASSERT_GE(S.TopStrides.size(), 2u);
  EXPECT_EQ(S.TopStrides[0].Value, 2);
  EXPECT_EQ(S.TopStrides[0].Count, 4u);
  EXPECT_EQ(S.TopStrides[1].Value, 100);
  EXPECT_EQ(S.TopStrides[1].Count, 4u);
}

// Figure 4 (c): the alternated sequence has the same stride value profile
// but almost no zero differences.
TEST(StrideProfiler, Figure4AlternatedSequence) {
  StrideProfiler P(1, exactConfig());
  feedStrides(P, 0, {2, 100, 2, 100, 2, 100, 2, 100, 1});
  const StrideSiteData &D = P.site(0);
  EXPECT_EQ(D.totalStrides(), 9u);
  EXPECT_EQ(D.NumZeroDiff, 0u);

  StrideProfile SP = StrideProfile::fromProfiler(P);
  const StrideSiteSummary &S = SP.site(0);
  ASSERT_GE(S.TopStrides.size(), 2u);
  EXPECT_EQ(S.TopStrides[0].Value, 2);
  EXPECT_EQ(S.TopStrides[1].Value, 100);
}

TEST(StrideProfiler, ZeroStridesBypassLfu) {
  StrideProfiler P(1, exactConfig());
  uint64_t Addr = 0x2000;
  P.profile(0, Addr);
  for (int I = 0; I != 5; ++I)
    P.profile(0, Addr); // same address: zero stride
  EXPECT_EQ(P.site(0).NumZeroStride, 5u);
  EXPECT_EQ(P.totalLfuCalls(), 0u);
}

TEST(StrideProfiler, AddressCoarseningTreatsNearAddressesAsSame) {
  StrideProfilerConfig C = exactConfig();
  C.AddrCoarsenShift = 4;
  StrideProfiler P(1, C);
  P.profile(0, 0x2000);
  P.profile(0, 0x2008); // within the same 16-byte bucket
  EXPECT_EQ(P.site(0).NumZeroStride, 1u);
  EXPECT_EQ(P.totalLfuCalls(), 0u);
}

TEST(StrideProfiler, FineSamplingScalesStrides) {
  StrideProfilerConfig C = exactConfig();
  C.Sampling.Enabled = true;
  C.Sampling.FineInterval = 4;
  C.Sampling.ChunkSkip = 0; // chunk phase: profile everything
  C.Sampling.ChunkProfile = 1000000;
  StrideProfiler P(1, C);
  // Constant stride 16; fine sampling sees every 4th address => stride 64.
  uint64_t Addr = 0x8000;
  for (int I = 0; I != 200; ++I) {
    P.profile(0, Addr);
    Addr += 16;
  }
  StrideProfile SP = StrideProfile::fromProfiler(P);
  ASSERT_FALSE(SP.site(0).TopStrides.empty());
  // fromProfiler divides by F, recovering the original stride.
  EXPECT_EQ(SP.site(0).TopStrides[0].Value, 16);
  EXPECT_LT(P.totalProcessed(), 60u); // ~1/4 of 200
}

TEST(StrideProfiler, ChunkSamplingSkipsThenProfiles) {
  StrideProfilerConfig C = exactConfig();
  C.Sampling.Enabled = true;
  C.Sampling.FineInterval = 1;
  C.Sampling.ChunkSkip = 100;
  C.Sampling.ChunkProfile = 50;
  StrideProfiler P(1, C);
  uint64_t Addr = 0;
  for (int I = 0; I != 300; ++I) {
    P.profile(0, Addr);
    Addr += 8;
  }
  // 300 refs: skip 100, profile 50, flip consumes 1, skip 100, profile 49.
  EXPECT_EQ(P.totalInvocations(), 300u);
  EXPECT_EQ(P.totalProcessed(), 99u);
}

TEST(StrideProfiler, CostGrowsOnLfuPath) {
  StrideProfiler P(2, exactConfig());
  // Site 0: zero strides only (cheap path).
  P.profile(0, 0x1000);
  uint64_t CheapCost = P.profile(0, 0x1000);
  // Site 1: distinct strides (LFU path).
  P.profile(1, 0x1000);
  P.profile(1, 0x2000);
  uint64_t LfuCost = P.profile(1, 0x4000);
  EXPECT_GT(LfuCost, CheapCost);
}

TEST(ProfileData, RoundTripSerialization) {
  StrideProfiler P(3, exactConfig());
  feedStrides(P, 0, {128, 128, 128, 64});
  feedStrides(P, 2, {32, 32, 32, 32, 32});

  StrideProfile SP = StrideProfile::fromProfiler(P);
  EdgeProfile EP(2);
  EP.setFrequency(0, Edge{1, 0}, 980);
  EP.setFrequency(0, Edge{1, 1}, 20);
  EP.setFrequency(1, Edge{0, 0}, 5);

  std::stringstream SS;
  writeProfiles(EP, SP, SS);

  EdgeProfile EP2;
  StrideProfile SP2;
  ASSERT_TRUE(readProfiles(SS, 2, 3, EP2, SP2));
  EXPECT_EQ(EP2.frequency(0, Edge{1, 0}), 980u);
  EXPECT_EQ(EP2.frequency(0, Edge{1, 1}), 20u);
  EXPECT_EQ(EP2.frequency(1, Edge{0, 0}), 5u);
  EXPECT_EQ(SP2.site(0).TotalStrides, SP.site(0).TotalStrides);
  ASSERT_EQ(SP2.site(0).TopStrides.size(), SP.site(0).TopStrides.size());
  EXPECT_EQ(SP2.site(0).TopStrides[0].Value,
            SP.site(0).TopStrides[0].Value);
  EXPECT_EQ(SP2.site(2).top1Stride(), 32);
  EXPECT_EQ(SP2.site(1).TotalStrides, 0u);
}

TEST(ProfileData, ReadRejectsMalformedInput) {
  std::stringstream SS("bogus line\n");
  EdgeProfile EP;
  StrideProfile SP;
  EXPECT_FALSE(readProfiles(SS, 1, 1, EP, SP));
}

namespace {

// Compares every observable of two profilers that should have processed the
// same event stream (one per-event, one batched).
void expectProfilersEqual(const StrideProfiler &A, const StrideProfiler &B) {
  ASSERT_EQ(A.numSites(), B.numSites());
  EXPECT_EQ(A.totalInvocations(), B.totalInvocations());
  EXPECT_EQ(A.totalProcessed(), B.totalProcessed());
  EXPECT_EQ(A.totalLfuCalls(), B.totalLfuCalls());
  for (uint32_t S = 0; S < A.numSites(); ++S) {
    const StrideSiteData &X = A.site(S);
    const StrideSiteData &Y = B.site(S);
    EXPECT_EQ(X.PrevAddress, Y.PrevAddress) << "site " << S;
    EXPECT_EQ(X.HasPrevAddress, Y.HasPrevAddress) << "site " << S;
    EXPECT_EQ(X.PrevStride, Y.PrevStride) << "site " << S;
    EXPECT_EQ(X.HasPrevStride, Y.HasPrevStride) << "site " << S;
    EXPECT_EQ(X.NumZeroStride, Y.NumZeroStride) << "site " << S;
    EXPECT_EQ(X.NumNonZeroStride, Y.NumNonZeroStride) << "site " << S;
    EXPECT_EQ(X.NumZeroDiff, Y.NumZeroDiff) << "site " << S;
    EXPECT_EQ(X.NumberToSkip, Y.NumberToSkip) << "site " << S;
    EXPECT_EQ(X.LastChunkEpoch, Y.LastChunkEpoch) << "site " << S;
    EXPECT_EQ(X.PrevGlobalRef, Y.PrevGlobalRef) << "site " << S;
    EXPECT_EQ(X.RefGapSum, Y.RefGapSum) << "site " << S;
    EXPECT_EQ(X.RefGapCount, Y.RefGapCount) << "site " << S;
    EXPECT_EQ(X.Invocations, Y.Invocations) << "site " << S;
    EXPECT_EQ(X.Processed, Y.Processed) << "site " << S;
    EXPECT_EQ(X.LfuCalls, Y.LfuCalls) << "site " << S;
    std::vector<ValueCount> TX = X.Lfu.topValues();
    std::vector<ValueCount> TY = Y.Lfu.topValues();
    ASSERT_EQ(TX.size(), TY.size()) << "site " << S;
    for (size_t I = 0; I < TX.size(); ++I) {
      EXPECT_EQ(TX[I].Value, TY[I].Value) << "site " << S << " top " << I;
      EXPECT_EQ(TX[I].Count, TY[I].Count) << "site " << S << " top " << I;
    }
  }
}

// Builds a deterministic multi-site event stream whose per-site address
// sequences mix constant strides, phase changes, and repeats.
std::vector<StrideEvent> makeEventStream(uint32_t NumSites, size_t N) {
  std::vector<StrideEvent> Events;
  Events.reserve(N);
  std::vector<uint64_t> Addr(NumSites);
  for (uint32_t S = 0; S < NumSites; ++S)
    Addr[S] = 0x10000 * (S + 1);
  for (size_t I = 0; I < N; ++I) {
    uint32_t S = static_cast<uint32_t>((I * 7 + I / 5) % NumSites);
    // Vary the stride per phase so the LFU path is exercised.
    uint64_t Step = (I / 40 % 3 == 0) ? 8 : (I / 40 % 3 == 1) ? 0 : 24;
    Addr[S] += Step;
    Events.push_back(StrideEvent{Addr[S], I, S});
  }
  return Events;
}

void runBatchDifferential(StrideProfilerConfig Config, uint32_t NumSites,
                          size_t N) {
  std::vector<StrideEvent> Events = makeEventStream(NumSites, N);

  StrideProfiler PerEvent(NumSites, Config);
  StrideProfiler Batched(NumSites, Config);

  uint64_t CostA = 0;
  for (const StrideEvent &E : Events)
    CostA += PerEvent.profile(E.SiteId, E.Address, E.GlobalRefIndex);

  // Odd, co-prime block sizes so batch boundaries land at every possible
  // offset within the chunk skip/profile phases, including mid-flip.
  uint64_t CostB = 0;
  static const size_t Blocks[] = {1, 3, 7, 5, 11, 2, 9};
  size_t I = 0, B = 0;
  while (I < Events.size()) {
    size_t Len = std::min(Blocks[B % (sizeof(Blocks) / sizeof(Blocks[0]))],
                          Events.size() - I);
    CostB += Batched.profileBatch(Events.data() + I, Len);
    I += Len;
    ++B;
  }

  EXPECT_EQ(CostA, CostB);
  expectProfilersEqual(PerEvent, Batched);
}

} // namespace

TEST(StrideProfiler, BatchMatchesPerEventUnsampled) {
  runBatchDifferential(exactConfig(), 5, 400);
}

TEST(StrideProfiler, BatchMatchesPerEventAcrossChunkFlips) {
  StrideProfilerConfig Config = exactConfig();
  Config.Sampling.Enabled = true;
  // Tiny chunk phases (skip 10, profile 4) so the stream crosses dozens of
  // phase flips, with batch boundaries straddling them.
  Config.Sampling.ChunkSkip = 10;
  Config.Sampling.ChunkProfile = 4;
  Config.Sampling.FineInterval = 3;
  runBatchDifferential(Config, 5, 400);
}

TEST(StrideProfiler, BatchMatchesPerEventSingleEventBlocks) {
  StrideProfilerConfig Config = exactConfig();
  Config.Sampling.Enabled = true;
  Config.Sampling.ChunkSkip = 3;
  Config.Sampling.ChunkProfile = 2;
  Config.Sampling.FineInterval = 2;
  std::vector<StrideEvent> Events = makeEventStream(3, 97);

  StrideProfiler PerEvent(3, Config);
  StrideProfiler Batched(3, Config);
  uint64_t CostA = 0, CostB = 0;
  for (const StrideEvent &E : Events) {
    CostA += PerEvent.profile(E.SiteId, E.Address, E.GlobalRefIndex);
    CostB += Batched.profileBatch(&E, 1);
  }
  EXPECT_EQ(CostA, CostB);
  expectProfilersEqual(PerEvent, Batched);
}

TEST(StrideProfiler, WorksWithoutObsSession) {
  // Never calls attachObs: all telemetry writes must land in the
  // statically-allocated dummy sinks, not crash on null.
  StrideProfiler P(2, exactConfig());
  feedStrides(P, 0, {8, 8, 8, 0, 0, 16});
  feedStrides(P, 1, {4, 4});
  EXPECT_GT(P.totalInvocations(), 0u);
  EXPECT_EQ(P.site(0).totalStrides(), 6u);
  // Detaching after attaching also falls back to the dummies.
  P.attachObs(nullptr);
  feedStrides(P, 0, {8}, 0x200000);
  // The new base plus one step form two more strides on top of the six.
  EXPECT_EQ(P.site(0).totalStrides(), 8u);
}

TEST(Lfu, TopValuesSnapshotIsRepeatableAndNonDestructive) {
  LfuValueProfiler P(exactLfu());
  for (int I = 0; I < 50; ++I)
    P.add(I % 5 * 100);
  std::vector<ValueCount> First = P.topValues();
  std::vector<ValueCount> Second = P.topValues();
  ASSERT_EQ(First.size(), Second.size());
  for (size_t I = 0; I < First.size(); ++I) {
    EXPECT_EQ(First[I].Value, Second[I].Value);
    EXPECT_EQ(First[I].Count, Second[I].Count);
  }
  // The snapshot's scratch reuse must not disturb the live buffers:
  // adding more values and re-snapshotting still yields correct counts.
  for (int I = 0; I < 50; ++I)
    P.add(0);
  std::vector<ValueCount> Third = P.topValues();
  ASSERT_FALSE(Third.empty());
  EXPECT_EQ(Third[0].Value, 0);
  EXPECT_EQ(Third[0].Count, 60u);
}

TEST(Lfu, WorksWithoutObsSinks) {
  LfuValueProfiler P(exactLfu());
  // Enough adds to cross the MergeInterval so the merge-counter write also
  // exercises the dummy sink, not just the per-add work histogram.
  for (int I = 0; I < 3000; ++I)
    P.add(I % 7);
  EXPECT_EQ(P.totalAdded(), 3000u);
  EXPECT_GT(P.numMerges(), 0u);
  P.attachObs(nullptr, nullptr);
  P.add(42);
  EXPECT_EQ(P.totalAdded(), 3001u);
}

//===----------------------------------------------------------------------===//
// profileAt: the positionally-addressed entry point ParallelReplay shards on
//===----------------------------------------------------------------------===//

namespace {

/// One reference of a deterministic interleaved multi-site stream.
struct SyntheticRef {
  uint32_t Site;
  uint64_t Addr;
  uint64_t Ref;
};

/// Pseudo-random (LCG-driven) interleaving of \p NumSites sites: mixed
/// constant / negative / zero strides with phase noise, plus occasional
/// unknown (zero) global-ref indices -- the delta-encoder and sampler
/// stress shape.
std::vector<SyntheticRef> syntheticRefs(size_t N, uint32_t NumSites,
                                        uint64_t Seed) {
  std::vector<uint64_t> Addr(NumSites);
  for (uint32_t S = 0; S != NumSites; ++S)
    Addr[S] = 0x10000 + S * 0x1000;
  std::vector<SyntheticRef> Out;
  Out.reserve(N);
  uint64_t X = Seed;
  for (size_t I = 0; I != N; ++I) {
    X = X * 6364136223846793005ull + 1442695040888963407ull;
    const uint32_t S = static_cast<uint32_t>((X >> 33) % NumSites);
    int64_t Stride = S % 3 == 0 ? 64 : (S % 3 == 1 ? -32 : 0);
    if ((X >> 21) % 5 == 0)
      Stride += 16; // phase noise
    Addr[S] = static_cast<uint64_t>(static_cast<int64_t>(Addr[S]) + Stride);
    Out.push_back({S, Addr[S], (X >> 13) % 7 == 0 ? 0 : I + 1});
  }
  return Out;
}

} // namespace

// The determinism contract (docs/TRACE.md): feeding each site its
// references in program order with their original 0-based load indexes
// through profileAt(), across any site partition, reproduces a serial
// profile() sweep bit for bit -- per-site state, totals, and summed cost.
// Chunk phases are deliberately tiny so the run crosses many epoch flips,
// and the degenerate ChunkSkip == 0 / ChunkProfile == 0 configs are
// covered too.
TEST(StrideProfiler, ProfileAtShardedBySiteMatchesSerialSweep) {
  struct SampleCase {
    bool Enabled;
    uint64_t Skip, Prof;
    uint32_t Fine;
    const char *Tag;
  };
  const SampleCase Cases[] = {
      {false, 0, 0, 1, "unsampled"},
      {true, 37, 11, 3, "sampled-37-11"},
      {true, 0, 13, 2, "sampled-skip0"},
      {true, 24, 0, 2, "sampled-profile0"},
  };
  const uint32_t NumSites = 9;
  const std::vector<SyntheticRef> Refs = syntheticRefs(20000, NumSites, 42);

  for (const SampleCase &SC : Cases) {
    SCOPED_TRACE(SC.Tag);
    StrideProfilerConfig C = exactConfig();
    C.Sampling.Enabled = SC.Enabled;
    C.Sampling.ChunkSkip = SC.Skip;
    C.Sampling.ChunkProfile = SC.Prof;
    C.Sampling.FineInterval = SC.Fine;

    StrideProfiler Serial(NumSites, C);
    uint64_t SerialCost = 0;
    for (const SyntheticRef &R : Refs)
      SerialCost += Serial.profile(R.Site, R.Addr, R.Ref);
    const std::string SerialJson =
        strideProfileToJson(StrideProfile::fromProfiler(Serial)).str();

    // Several shard counts, each with a different (hash-randomized) site
    // partition; Round varies the partition so splits are not always the
    // plain modulo one.
    for (unsigned Round = 0; Round != 3; ++Round) {
      for (unsigned Shards : {1u, 2u, 4u}) {
        SCOPED_TRACE("round " + std::to_string(Round) + " shards " +
                     std::to_string(Shards));
        std::vector<unsigned> ShardOf(NumSites);
        for (uint32_t S = 0; S != NumSites; ++S)
          ShardOf[S] = static_cast<unsigned>(
              (S * 2654435761u + Round * 97u) % Shards);

        uint64_t Cost = 0, Inv = 0, Proc = 0, Lfu = 0;
        StrideProfile Merged(NumSites);
        for (unsigned W = 0; W != Shards; ++W) {
          StrideProfiler P(NumSites, C);
          uint64_t LoadIndex = 0;
          for (const SyntheticRef &R : Refs) {
            if (ShardOf[R.Site] == W)
              Cost += P.profileAt(R.Site, R.Addr, R.Ref, LoadIndex);
            ++LoadIndex;
          }
          Inv += P.totalInvocations();
          Proc += P.totalProcessed();
          Lfu += P.totalLfuCalls();
          mergeStrideProfile(Merged, StrideProfile::fromProfiler(P));
        }
        EXPECT_EQ(Cost, SerialCost);
        EXPECT_EQ(Inv, Serial.totalInvocations());
        EXPECT_EQ(Proc, Serial.totalProcessed());
        EXPECT_EQ(Lfu, Serial.totalLfuCalls());
        EXPECT_EQ(strideProfileToJson(Merged).str(), SerialJson);
      }
    }
  }
}

// The same contract at the method level: for every profiling method's
// sampling configuration, a randomized site split folded through
// mergeStrideProfile equals the unsharded profile.
TEST(StrideProfiler, ShardedMergeMatchesUnshardedForAllMethods) {
  const uint32_t NumSites = 6;
  const std::vector<SyntheticRef> Refs = syntheticRefs(8000, NumSites, 7);
  for (ProfilingMethod Method : allProfilingMethods()) {
    SCOPED_TRACE(profilingMethodName(Method));
    StrideProfilerConfig C; // default (paper) config, like the pipeline uses
    C.Sampling.Enabled = methodUsesSampling(Method);

    StrideProfiler Serial(NumSites, C);
    for (const SyntheticRef &R : Refs)
      Serial.profile(R.Site, R.Addr, R.Ref);

    StrideProfile Merged(NumSites);
    const unsigned Shards = 3;
    for (unsigned W = 0; W != Shards; ++W) {
      StrideProfiler P(NumSites, C);
      uint64_t LoadIndex = 0;
      for (const SyntheticRef &R : Refs) {
        if ((R.Site * 2654435761u) % Shards == W)
          P.profileAt(R.Site, R.Addr, R.Ref, LoadIndex);
        ++LoadIndex;
      }
      mergeStrideProfile(Merged, StrideProfile::fromProfiler(P));
    }
    EXPECT_EQ(strideProfileToJson(Merged).str(),
              strideProfileToJson(StrideProfile::fromProfiler(Serial)).str());
  }
}

//===----------------------------------------------------------------------===//
// mergeStrideProfile: the commutative-fold algebra
//===----------------------------------------------------------------------===//

// Value-level algebra over *overlapping* profiles (disjoint-site folds are
// covered above): commutative and associative once canonicalized with
// truncateTopStrides, and an exact identity when folding into an empty
// profile.
TEST(ProfileData, MergeIsCommutativeAssociativeAndLossless) {
  const uint32_t NumSites = 7;
  auto Build = [&](uint64_t Seed, size_t N, bool Sampling) {
    StrideProfilerConfig C = exactConfig();
    C.Sampling.Enabled = Sampling;
    C.Sampling.ChunkSkip = 50;
    C.Sampling.ChunkProfile = 20;
    StrideProfiler P(NumSites, C);
    for (const SyntheticRef &R : syntheticRefs(N, NumSites, Seed))
      P.profile(R.Site, R.Addr, R.Ref);
    return StrideProfile::fromProfiler(P);
  };
  auto Canon = [](StrideProfile SP) {
    truncateTopStrides(SP, 1u << 20);
    return strideProfileToJson(SP).str();
  };

  for (bool Sampling : {false, true}) {
    SCOPED_TRACE(Sampling ? "sampled" : "unsampled");
    const StrideProfile A = Build(1, 4000, Sampling);
    const StrideProfile B = Build(2, 3000, Sampling);
    const StrideProfile C = Build(3, 2000, Sampling);

    // Commutative: A+B == B+A.
    StrideProfile AB = A;
    mergeStrideProfile(AB, B);
    StrideProfile BA = B;
    mergeStrideProfile(BA, A);
    EXPECT_EQ(Canon(AB), Canon(BA));

    // Associative: (A+B)+C == A+(B+C).
    StrideProfile AB_C = AB;
    mergeStrideProfile(AB_C, C);
    StrideProfile BC = B;
    mergeStrideProfile(BC, C);
    StrideProfile A_BC = A;
    mergeStrideProfile(A_BC, BC);
    EXPECT_EQ(Canon(AB_C), Canon(A_BC));

    // Scalar sums really add up.
    for (uint32_t S = 0; S != NumSites; ++S)
      EXPECT_EQ(AB_C.site(S).TotalStrides, A.site(S).TotalStrides +
                                               B.site(S).TotalStrides +
                                               C.site(S).TotalStrides);

    // Identity: an empty destination receives a verbatim ordered copy --
    // no canonicalization needed for byte equality.
    StrideProfile E(NumSites);
    mergeStrideProfile(E, A);
    EXPECT_EQ(strideProfileToJson(E).str(), strideProfileToJson(A).str());
  }
}
