//===- tests/test_profilestore.cpp - ProfileStore serialization tests -------===//
//
// Part of the StrideProf project test suite.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ProfileStore round-trip bit-identity, order-independent shard merging,
/// malformed-file rejection, and the save -> load -> feedback equivalence
/// the sharded-profile workflow depends on.
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "profile/ProfileStore.h"
#include "profile/StrideProfiler.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

using namespace sprof;
using namespace sprof::test;

namespace {

// A small synthetic store populated through the real profiler, so the
// serialized tables have realistic shapes. Salt perturbs counts and
// strides so different shards do not collapse to identical tables.
ProfileStore makeStore(uint32_t NumSites, uint64_t Salt,
                       ProfileMeta Meta = {"test.synthetic", "edge-check",
                                           "train"}) {
  StrideProfilerConfig C;
  StrideProfiler P(NumSites, C);
  for (uint32_t Site = 0; Site != NumSites; ++Site) {
    uint64_t Addr = 0x1000 + Salt * 8;
    uint64_t Stride = 16 * (1 + ((Site + Salt) & 3));
    for (unsigned I = 0; I != 40; ++I) {
      P.profile(Site, Addr);
      Addr += (I % 7 == 6) ? Stride + 8 * Salt : Stride;
    }
  }
  EdgeProfile Edges(2);
  for (uint32_t F = 0; F != 2; ++F) {
    Edges.setEntryCount(F, 10 + Salt);
    for (uint32_t B = 0; B != 4; ++B)
      Edges.setFrequency(F, Edge{B, 0}, (B + 1) * 5 + Salt);
  }
  return ProfileStore(std::move(Meta), std::move(Edges),
                      StrideProfile::fromProfiler(P));
}

// The chase workload from TestHelpers wrapped as a Workload, so Pipeline
// can drive it end to end.
class ChaseWorkload : public Workload {
public:
  WorkloadInfo info() const override {
    return {"test.chase", "c", "pointer chase"};
  }
  Program build(const BuildRequest &Req) const override {
    Program P;
    uint32_t DataSite = 0, NextSite = 0;
    P.M = makeChaseModule(DataSite, NextSite);
    // The list length depends on the data set and the (mixed) seed, so
    // replicas with different seed offsets produce different profiles.
    uint64_t Seed = Req.seed(0x51dee);
    uint64_t Count = (Req.DS == DataSet::Train ? 192 : 256) + (Seed & 31);
    fillChaseList(P.Memory, Count, 64);
    return P;
  }
};

TEST(ProfileStore, RoundTripBitIdentity) {
  ProfileStore Store = makeStore(12, 3);
  std::string Text = Store.toString();

  ProfileStore Loaded;
  std::string Error;
  ASSERT_TRUE(ProfileStore::loadString(Text, Loaded, &Error)) << Error;

  // Serialize-load-serialize is a fixed point: the reloaded store writes
  // the same bytes.
  EXPECT_EQ(Loaded.toString(), Text);
  EXPECT_EQ(Loaded.meta().Workload, "test.synthetic");
  EXPECT_EQ(Loaded.meta().Method, "edge-check");
  EXPECT_EQ(Loaded.meta().DataSet, "train");
  EXPECT_EQ(Loaded.numFunctions(), Store.numFunctions());
  EXPECT_EQ(Loaded.numSites(), Store.numSites());

  for (uint32_t S = 0; S != Store.numSites(); ++S) {
    const StrideSiteSummary &A = Store.strides().site(S);
    const StrideSiteSummary &B = Loaded.strides().site(S);
    EXPECT_EQ(A.TotalStrides, B.TotalStrides);
    EXPECT_EQ(A.NumZeroStride, B.NumZeroStride);
    EXPECT_EQ(A.RefGapSum, B.RefGapSum);
    ASSERT_EQ(A.TopStrides.size(), B.TopStrides.size());
    for (size_t I = 0; I != A.TopStrides.size(); ++I) {
      EXPECT_EQ(A.TopStrides[I].Value, B.TopStrides[I].Value);
      EXPECT_EQ(A.TopStrides[I].Count, B.TopStrides[I].Count);
    }
  }
  for (uint32_t F = 0; F != 2; ++F) {
    EXPECT_EQ(Loaded.edges().entryCount(F), Store.edges().entryCount(F));
    for (uint32_t B = 0; B != 4; ++B)
      EXPECT_EQ(Loaded.edges().frequency(F, Edge{B, 0}),
                Store.edges().frequency(F, Edge{B, 0}));
  }
}

TEST(ProfileStore, FileRoundTrip) {
  ProfileStore Store = makeStore(6, 1);
  std::string Path = testing::TempDir() + "sprof_store_test.profile";
  ASSERT_TRUE(Store.saveFile(Path));

  ProfileStore Loaded;
  std::string Error;
  ASSERT_TRUE(ProfileStore::loadFile(Path, Loaded, &Error)) << Error;
  EXPECT_EQ(Loaded.toString(), Store.toString());
}

TEST(ProfileStore, MergeSumsCounts) {
  ProfileStore A = makeStore(8, 1);
  ProfileStore B = makeStore(8, 2);
  uint64_t TotalA = A.strides().site(0).TotalStrides;
  uint64_t TotalB = B.strides().site(0).TotalStrides;
  uint64_t FreqA = A.edges().frequency(0, Edge{1, 0});
  uint64_t FreqB = B.edges().frequency(0, Edge{1, 0});

  std::string Error;
  ASSERT_TRUE(A.merge(B, &Error)) << Error;
  EXPECT_EQ(A.strides().site(0).TotalStrides, TotalA + TotalB);
  EXPECT_EQ(A.edges().frequency(0, Edge{1, 0}), FreqA + FreqB);
  // Shards agreed on method/dataset provenance, so it survives.
  EXPECT_EQ(A.meta().Method, "edge-check");
  EXPECT_EQ(A.meta().DataSet, "train");
}

TEST(ProfileStore, MergeDeterministicUnderShardPermutation) {
  std::vector<ProfileStore> Shards;
  for (uint64_t Salt = 0; Salt != 4; ++Salt)
    Shards.push_back(makeStore(10, Salt));

  std::vector<size_t> Order(Shards.size());
  std::iota(Order.begin(), Order.end(), 0);
  std::string Canonical;
  do {
    std::vector<const ProfileStore *> Ptrs;
    for (size_t I : Order)
      Ptrs.push_back(&Shards[I]);
    ProfileStore Merged;
    std::string Error;
    ASSERT_TRUE(ProfileStore::mergeShards(Ptrs, 4, Merged, &Error)) << Error;
    std::string Text = Merged.toString();
    if (Canonical.empty())
      Canonical = Text;
    else
      EXPECT_EQ(Text, Canonical);
  } while (std::next_permutation(Order.begin(), Order.end()));
}

TEST(ProfileStore, MergeDegradesMismatchedProvenanceInAnyOrder) {
  // One shard collected with a different method: the merged store must
  // drop the method tag, and must do so whichever shard comes first.
  ProfileStore A = makeStore(4, 0, {"w", "edge-check", "train"});
  ProfileStore B = makeStore(4, 1, {"w", "block-check", "train"});

  ProfileStore AB = A, BA = B;
  ASSERT_TRUE(AB.merge(B));
  ASSERT_TRUE(BA.merge(A));
  EXPECT_EQ(AB.meta().Method, "");
  EXPECT_EQ(BA.meta().Method, "");
  EXPECT_EQ(AB.meta().DataSet, "train");

  // Raw merge unions TopStrides in discovery order; the canonical
  // truncation pass sorts them, after which the two orders serialize
  // identically (this is what mergeShards does).
  AB.truncateTopStrides(4);
  BA.truncateTopStrides(4);
  EXPECT_EQ(AB.toString(), BA.toString());
}

TEST(ProfileStore, MergeRejectsMismatchedShards) {
  ProfileStore A = makeStore(4, 0, {"w1", "m", "d"});
  ProfileStore B = makeStore(4, 1, {"w2", "m", "d"});
  std::string Error;
  EXPECT_FALSE(A.merge(B, &Error));
  EXPECT_NE(Error.find("workload mismatch"), std::string::npos) << Error;

  ProfileStore C = makeStore(4, 0, {"w1", "m", "d"});
  ProfileStore D = makeStore(6, 0, {"w1", "m", "d"});
  EXPECT_FALSE(C.merge(D, &Error));
  EXPECT_NE(Error.find("shape mismatch"), std::string::npos) << Error;

  std::string NoShards;
  ProfileStore Out;
  EXPECT_FALSE(ProfileStore::mergeShards({}, 4, Out, &NoShards));
  EXPECT_FALSE(NoShards.empty());
}

TEST(ProfileStore, LoadRejectsMalformedFiles) {
  ProfileStore Ignored;
  std::string Error;

  // Wrong schema line.
  EXPECT_FALSE(
      ProfileStore::loadString("sprof.profile/99\nshape 0 0\n", Ignored,
                               &Error));
  EXPECT_NE(Error.find("sprof.profile/1"), std::string::npos) << Error;

  // Header never reaches a shape line.
  EXPECT_FALSE(ProfileStore::loadString(
      std::string(ProfileFileSchemaV1) + "\nworkload w\n", Ignored, &Error));
  EXPECT_NE(Error.find("shape"), std::string::npos) << Error;

  // Unknown header key.
  EXPECT_FALSE(ProfileStore::loadString(
      std::string(ProfileFileSchemaV1) + "\nbogus 1\nshape 0 0\n", Ignored,
      &Error));
  EXPECT_NE(Error.find("unknown header"), std::string::npos) << Error;

  // Shape line with missing fields.
  EXPECT_FALSE(ProfileStore::loadString(
      std::string(ProfileFileSchemaV1) + "\nshape 2\n", Ignored, &Error));
  EXPECT_NE(Error.find("shape"), std::string::npos) << Error;

  // Valid header, malformed bodies: unknown record kind, ids outside the
  // declared shape, and a corrupt stride pair.
  std::string Hdr = std::string(ProfileFileSchemaV1) + "\nshape 2 4\n";
  EXPECT_FALSE(ProfileStore::loadString(Hdr + "bogus 1 2\n", Ignored,
                                        &Error));
  EXPECT_FALSE(ProfileStore::loadString(
      Hdr + "site 9 total 1 zero 0 zerodiff 0 gap 0 0 top\n", Ignored,
      &Error));
  EXPECT_FALSE(
      ProfileStore::loadString(Hdr + "edge 5 0 0 1\n", Ignored, &Error));
  EXPECT_FALSE(ProfileStore::loadString(
      Hdr + "site 0 total 1 zero 0 zerodiff 0 gap 0 0 top 8x:3\n", Ignored,
      &Error));

  // Empty input.
  EXPECT_FALSE(ProfileStore::loadString("", Ignored, &Error));
}

TEST(ProfileStore, SaveLoadFeedbackEquivalence) {
  // A profile that went through serialization must drive feedback to the
  // exact same decisions, classes, and timed run as the in-memory one.
  ChaseWorkload W;
  PipelineConfig Config;
  // The chase list is a few hundred nodes, far below the paper's FT=2000;
  // drop the threshold so its sites actually classify and prefetch.
  Config.Classifier.FrequencyThreshold = 16;
  Pipeline P(W, Config);

  ProfileRunResult PR =
      P.runProfile(ProfilingMethod::NaiveAll, DataSet::Train,
                   /*WithMemorySystem=*/false);

  ProfileStore Store({W.info().Name, "naive-all", "train"}, PR.Edges,
                     PR.Strides);
  ProfileStore Loaded;
  std::string Error;
  ASSERT_TRUE(ProfileStore::loadString(Store.toString(), Loaded, &Error))
      << Error;

  TimedRunResult Direct = P.runPrefetched(DataSet::Ref, PR.Edges, PR.Strides);
  TimedRunResult Stored =
      P.runPrefetched(DataSet::Ref, Loaded.edges(), Loaded.strides());

  EXPECT_EQ(Stored.Feedback.SiteClass, Direct.Feedback.SiteClass);
  EXPECT_EQ(Stored.Feedback.SiteInLoop, Direct.Feedback.SiteInLoop);
  EXPECT_EQ(Stored.Feedback.Decisions.size(),
            Direct.Feedback.Decisions.size());
  EXPECT_EQ(Stored.Prefetches.SsstPrefetches,
            Direct.Prefetches.SsstPrefetches);
  EXPECT_EQ(Stored.Prefetches.InstructionsAdded,
            Direct.Prefetches.InstructionsAdded);
  EXPECT_EQ(Stored.Stats.Cycles, Direct.Stats.Cycles);
  EXPECT_EQ(Stored.Stats.Instructions, Direct.Stats.Instructions);

  // The run actually prefetched something, so the comparison is not
  // vacuous.
  EXPECT_GT(Direct.Prefetches.SsstPrefetches +
                Direct.Prefetches.PmstPrefetches +
                Direct.Prefetches.WsstPrefetches,
            0u);
}

} // namespace
