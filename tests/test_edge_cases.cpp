//===- tests/test_edge_cases.cpp - Edge-case and corner tests ---------------===//
//
// Part of the StrideProf project test suite: corners the main suites do
// not reach -- negative offsets, aliasing, deep recursion, irreducible
// regions, critical-edge profiles, rule-2 equivalent loads, and
// degenerate profiles.
//
//===----------------------------------------------------------------------===//

#include "analysis/ControlEquivalence.h"
#include "analysis/Dominators.h"
#include "analysis/EquivalentLoads.h"
#include "analysis/LoopInfo.h"
#include "driver/Pipeline.h"
#include "instrument/Instrumentation.h"
#include "interp/Interpreter.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"

#include "TestHelpers.h"
#include <gtest/gtest.h>

using namespace sprof;

TEST(InterpreterEdge, NegativeOffsetsWork) {
  Module M;
  IRBuilder B(M);
  B.startFunction("main", 0);
  Reg P = B.movImm(0x2000);
  B.store(P, -16, Operand::imm(99));
  Reg V = B.load(P, -16);
  B.ret(Operand::reg(V));
  Interpreter I(M, SimMemory());
  EXPECT_EQ(I.run().ExitValue, 99);
}

TEST(InterpreterEdge, StoreLoadAliasing) {
  // A store must be visible to a subsequent load of the same address even
  // when issued through different registers.
  Module M;
  IRBuilder B(M);
  B.startFunction("main", 0);
  Reg P = B.movImm(0x3000);
  Reg Q = B.add(Operand::reg(P), Operand::imm(8));
  B.store(P, 8, Operand::imm(1234));
  Reg V = B.load(Q, 0);
  B.ret(Operand::reg(V));
  Interpreter I(M, SimMemory());
  EXPECT_EQ(I.run().ExitValue, 1234);
}

TEST(InterpreterEdge, DeepRecursionSurvives) {
  // sum(n) = n == 0 ? 0 : n + sum(n-1) with n = 20000: the call stack is
  // heap-allocated frames, not the host stack.
  Module M;
  IRBuilder B(M);
  uint32_t Fn = B.startFunction("sum", 1);
  {
    Function &F = B.function();
    uint32_t BaseBB = F.newBlock("base");
    uint32_t RecBB = F.newBlock("rec");
    Reg N = 0;
    Reg C = B.cmp(Opcode::CmpEq, Operand::reg(N), Operand::imm(0));
    B.br(Operand::reg(C), BaseBB, RecBB);
    B.setBlock(BaseBB);
    B.ret(Operand::imm(0));
    B.setBlock(RecBB);
    Reg N1 = B.sub(Operand::reg(N), Operand::imm(1));
    Reg Sub = B.call(Fn, {Operand::reg(N1)}, B.newReg());
    Reg R = B.add(Operand::reg(N), Operand::reg(Sub));
    B.ret(Operand::reg(R));
  }
  B.startFunction("main", 0);
  M.EntryFunction = 1;
  Reg R = B.call(Fn, {Operand::imm(20000)}, B.newReg());
  B.ret(Operand::reg(R));
  Interpreter I(M, SimMemory());
  EXPECT_EQ(I.run().ExitValue, 20000ll * 20001 / 2);
}

TEST(InterpreterEdge, PredicatedPrefetchIssuesOnlyWhenTrue) {
  Module M;
  IRBuilder B(M);
  B.startFunction("main", 0);
  Reg P = B.movImm(0x9000);
  Reg On = B.movImm(1);
  Reg Off = B.movImm(0);
  Instruction Pf1;
  Pf1.Op = Opcode::Prefetch;
  Pf1.A = Operand::reg(P);
  Pf1.Pred = On;
  B.insert(Pf1);
  Instruction Pf2 = Pf1;
  Pf2.Imm = 4096;
  Pf2.Pred = Off;
  B.insert(Pf2);
  B.halt();
  Interpreter I(M, SimMemory());
  MemoryHierarchy MH{MemoryConfig()};
  I.attachMemory(&MH);
  ASSERT_TRUE(I.run().Completed);
  EXPECT_EQ(MH.stats().PrefetchesIssued, 1u);
}

TEST(EquivalentLoadsEdge, InvariantBaseGroupsAcrossBlocks) {
  // Loads off a loop-invariant base in control-equivalent blocks of the
  // same loop group together (rule 2).
  Module M;
  IRBuilder B(M);
  B.startFunction("main", 0);
  Function &F = B.function();
  uint32_t Header = F.newBlock("head");
  uint32_t Body1 = F.newBlock("body1");
  uint32_t Body2 = F.newBlock("body2");
  uint32_t Exit = F.newBlock("exit");

  Reg Base = B.movImm(0x1000);
  Reg I = B.movImm(0);
  B.jmp(Header);
  B.setBlock(Header);
  Reg C = B.cmp(Opcode::CmpLt, Operand::reg(I), Operand::imm(100));
  B.br(Operand::reg(C), Body1, Exit);
  B.setBlock(Body1);
  B.load(Base, 0);
  B.jmp(Body2);
  B.setBlock(Body2);
  B.load(Base, 128);
  B.add(Operand::reg(I), Operand::imm(1), I);
  B.jmp(Header);
  B.setBlock(Exit);
  B.halt();

  DomTree DT = DomTree::forward(F);
  DomTree PDT = DomTree::backward(F);
  LoopInfo LI(F, DT);
  ControlEquivalence CE(F, DT, PDT);
  std::vector<EquivalentLoadSet> Sets = partitionEquivalentLoads(F, LI, CE);
  ASSERT_EQ(Sets.size(), 1u);
  EXPECT_EQ(Sets[0].Members.size(), 2u);
  // Offsets 0 and 128 are two cache lines: two cover loads.
  EXPECT_EQ(Sets[0].coverLoads(64).size(), 2u);
}

TEST(InstrumentationEdge, IrreducibleLoadsTreatedAsOutLoop) {
  // A load inside an irreducible cycle: naive-loop must skip it (it is an
  // out-loop load per Section 2), naive-all must profile it.
  Module M;
  IRBuilder B(M);
  B.startFunction("main", 0);
  Function &F = B.function();
  uint32_t A = F.newBlock("a");
  uint32_t Bb = F.newBlock("b");
  uint32_t Exit = F.newBlock("exit");
  Reg P = B.movImm(0x1000);
  Reg C = B.movImm(1);
  B.br(Operand::reg(C), A, Bb);
  B.setBlock(A);
  B.load(P, 0, P);
  Reg C2 = B.cmp(Opcode::CmpNe, Operand::reg(P), Operand::imm(0));
  B.br(Operand::reg(C2), Bb, Exit);
  B.setBlock(Bb);
  B.jmp(A);
  B.setBlock(Exit);
  B.halt();

  auto CountStrides = [](Module Mod, ProfilingMethod Method) {
    instrumentModule(Mod, Method);
    unsigned N = 0;
    for (const Function &Fn : Mod.Functions)
      for (const BasicBlock &BB : Fn.Blocks)
        for (const Instruction &I : BB.Insts)
          if (I.Op == Opcode::ProfStride)
            ++N;
    return N;
  };
  EXPECT_EQ(CountStrides(M, ProfilingMethod::NaiveLoop), 0u);
  EXPECT_EQ(CountStrides(M, ProfilingMethod::EdgeCheck), 0u);
  EXPECT_EQ(CountStrides(M, ProfilingMethod::NaiveAll), 1u);
}

TEST(InstrumentationEdge, CriticalEdgeProfilesAreExact) {
  // A diamond whose arms both branch to two shared targets produces
  // critical edges; split-based counters must still be exact.
  Module M;
  IRBuilder B(M);
  B.startFunction("main", 0);
  Function &F = B.function();
  uint32_t Left = F.newBlock("left");
  uint32_t Right = F.newBlock("right");
  uint32_t T1 = F.newBlock("t1");
  uint32_t T2 = F.newBlock("t2");
  uint32_t Join = F.newBlock("join");

  Reg I = B.movImm(0);
  Reg Flag = B.movImm(1);
  B.br(Operand::reg(Flag), Left, Right);
  B.setBlock(Left);
  Reg C1 = B.cmp(Opcode::CmpLt, Operand::reg(I), Operand::imm(1));
  B.br(Operand::reg(C1), T1, T2); // critical: T1/T2 have 2 preds each
  B.setBlock(Right);
  Reg C2 = B.cmp(Opcode::CmpLt, Operand::reg(I), Operand::imm(2));
  B.br(Operand::reg(C2), T1, T2);
  B.setBlock(T1);
  B.jmp(Join);
  B.setBlock(T2);
  B.jmp(Join);
  B.setBlock(Join);
  B.halt();

  InstrumentationResult R = instrumentModule(M, ProfilingMethod::EdgeOnly);
  ASSERT_TRUE(isWellFormed(M));
  Interpreter In(M, SimMemory());
  ASSERT_TRUE(In.run().Completed);
  // Executed path: entry -> left -> t1 -> join.
  auto Freq = [&](uint32_t From, unsigned Slot) {
    return In.counters()[R.EdgeCounters[0].at(Edge{From, Slot})];
  };
  EXPECT_EQ(Freq(0, 0), 1u); // entry -> left
  EXPECT_EQ(Freq(0, 1), 0u); // entry -> right
  EXPECT_EQ(Freq(Left, 0), 1u);
  EXPECT_EQ(Freq(Left, 1), 0u);
  EXPECT_EQ(Freq(Right, 0), 0u);
  EXPECT_EQ(Freq(Right, 1), 0u);
  EXPECT_EQ(Freq(T1, 0), 1u);
  EXPECT_EQ(Freq(T2, 0), 0u);
}

TEST(FeedbackEdge, EmptyProfilesYieldNoDecisions) {
  uint32_t D, N;
  Module M = test::makeChaseModule(D, N);
  EdgeProfile EP(1);
  StrideProfile SP(M.NumLoadSites);
  FeedbackResult R = runFeedback(M, EP, SP);
  EXPECT_TRUE(R.Decisions.empty());
  EXPECT_TRUE(R.DependentDecisions.empty());
}

TEST(FeedbackEdge, ZeroStrideDominatedLoadIsNotPrefetched) {
  // A profile dominated by zero strides: top1 share is small even though
  // the only non-zero stride is perfectly stable.
  uint32_t D, N;
  Module M = test::makeChaseModule(D, N);
  EdgeProfile EP(1);
  EP.setFrequency(0, Edge{0, 0}, 1);
  EP.setFrequency(0, Edge{1, 0}, 100000);
  EP.setFrequency(0, Edge{1, 1}, 1);
  EP.setFrequency(0, Edge{2, 0}, 100000);
  StrideProfile SP(M.NumLoadSites);
  StrideSiteSummary &S = SP.site(N);
  S.TotalStrides = 100000;
  S.NumZeroStride = 80000;
  S.NumZeroDiff = 2000;
  S.TopStrides = {{64, 20000}}; // 20% of total
  FeedbackResult R = runFeedback(M, EP, SP);
  EXPECT_TRUE(R.Decisions.empty());
  EXPECT_EQ(R.SiteClass[N], StrideClass::None);
}

TEST(PipelineEdge, ProfilesFromDifferentMethodsAgreeOnHotStrides) {
  // naive-loop and edge-check must find the same dominant stride for the
  // mcf arc chain, despite profiling different reference subsets.
  auto W = makeMcfLike();
  Pipeline P(*W);
  auto TopStrideOfBusiest = [&](ProfilingMethod M) {
    ProfileRunResult R = P.runProfile(M, DataSet::Train, false);
    uint64_t Best = 0;
    int64_t Value = 0;
    for (uint32_t S = 0; S != R.Strides.numSites(); ++S) {
      const StrideSiteSummary &Sum = R.Strides.site(S);
      if (Sum.top1Freq() > Best) {
        Best = Sum.top1Freq();
        Value = Sum.top1Stride();
      }
    }
    return Value;
  };
  EXPECT_EQ(TopStrideOfBusiest(ProfilingMethod::NaiveLoop),
            TopStrideOfBusiest(ProfilingMethod::EdgeCheck));
}
